"""Predictor-quality diagnostics beyond MSE.

The paper argues MSE is the wrong target for matching; these diagnostics
quantify what each training scheme trades away.  For the time head:
relative-error percentiles and rank correlation (matching only needs the
*ordering* of clusters per task).  For the reliability head: Brier score,
expected calibration error, and the calibration curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.stats

from repro.utils.validation import check_array

__all__ = [
    "TimeAccuracy",
    "time_accuracy",
    "ReliabilityCalibration",
    "reliability_calibration",
    "per_task_rank_accuracy",
]


@dataclass(frozen=True)
class TimeAccuracy:
    """Summary of a time predictor's error distribution."""

    median_relative_error: float
    p90_relative_error: float
    mean_absolute_log_error: float
    spearman: float  # rank agreement of predicted vs true times


def time_accuracy(t_pred: np.ndarray, t_true: np.ndarray) -> TimeAccuracy:
    """Error summary for positive execution-time predictions."""
    t_pred = check_array(t_pred, name="t_pred")
    t_true = check_array(t_true, name="t_true")
    if t_pred.shape != t_true.shape:
        raise ValueError("prediction/truth shape mismatch")
    if np.any(t_pred <= 0) or np.any(t_true <= 0):
        raise ValueError("times must be strictly positive")
    rel = np.abs(t_pred - t_true) / t_true
    log_err = np.abs(np.log(t_pred) - np.log(t_true))
    flat_p, flat_t = t_pred.ravel(), t_true.ravel()
    if flat_p.size > 1 and np.ptp(flat_p) > 0 and np.ptp(flat_t) > 0:
        rho = float(scipy.stats.spearmanr(flat_p, flat_t).statistic)
    else:
        rho = 0.0
    return TimeAccuracy(
        median_relative_error=float(np.median(rel)),
        p90_relative_error=float(np.percentile(rel, 90)),
        mean_absolute_log_error=float(log_err.mean()),
        spearman=rho,
    )


def per_task_rank_accuracy(T_pred: np.ndarray, T_true: np.ndarray) -> float:
    """Fraction of tasks whose *fastest cluster* is correctly identified —
    the decision-relevant slice of prediction accuracy (Fig. 2's point)."""
    T_pred = check_array(T_pred, name="T_pred", ndim=2)
    T_true = check_array(T_true, name="T_true", ndim=2)
    if T_pred.shape != T_true.shape:
        raise ValueError("shape mismatch")
    return float(np.mean(T_pred.argmin(axis=0) == T_true.argmin(axis=0)))


@dataclass(frozen=True)
class ReliabilityCalibration:
    """Calibration summary of a probabilistic reliability predictor."""

    brier: float
    ece: float  # expected calibration error over equal-width bins
    bin_centers: np.ndarray
    bin_predicted: np.ndarray  # mean prediction per bin (NaN for empty bins)
    bin_observed: np.ndarray  # mean outcome per bin


def reliability_calibration(
    a_pred: np.ndarray,
    outcomes: np.ndarray,
    *,
    bins: int = 10,
) -> ReliabilityCalibration:
    """Brier score / ECE / calibration curve against binary outcomes.

    ``outcomes`` are realized success indicators (0/1), e.g. from the
    discrete-event simulator; ``a_pred`` the predicted probabilities.
    """
    if bins <= 1:
        raise ValueError(f"bins must be > 1, got {bins}")
    a_pred = check_array(a_pred, name="a_pred").ravel()
    outcomes = check_array(outcomes, name="outcomes").ravel()
    if a_pred.shape != outcomes.shape:
        raise ValueError("prediction/outcome shape mismatch")
    if np.any((a_pred < 0) | (a_pred > 1)):
        raise ValueError("predictions must lie in [0, 1]")
    if not set(np.unique(outcomes)) <= {0.0, 1.0}:
        raise ValueError("outcomes must be binary")

    brier = float(np.mean((a_pred - outcomes) ** 2))
    edges = np.linspace(0.0, 1.0, bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    idx = np.clip(np.digitize(a_pred, edges[1:-1]), 0, bins - 1)
    pred_mean = np.full(bins, np.nan)
    obs_mean = np.full(bins, np.nan)
    ece = 0.0
    for b in range(bins):
        mask = idx == b
        if not np.any(mask):
            continue
        pred_mean[b] = a_pred[mask].mean()
        obs_mean[b] = outcomes[mask].mean()
        ece += mask.mean() * abs(pred_mean[b] - obs_mean[b])
    return ReliabilityCalibration(
        brier=brier, ece=float(ece), bin_centers=centers,
        bin_predicted=pred_mean, bin_observed=obs_mean,
    )
