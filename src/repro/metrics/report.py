"""Aggregation of per-round metrics into paper-style mean ± std rows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.utils.tables import Table, format_mean_std

__all__ = ["MetricSample", "MethodReport", "aggregate", "comparison_table"]


@dataclass(frozen=True)
class MetricSample:
    """Metrics of one evaluation round (one test instance, one seed)."""

    regret: float
    reliability: float
    utilization: float


@dataclass
class MethodReport:
    """All evaluation rounds of one method, with mean ± std accessors."""

    method: str
    samples: list[MetricSample] = field(default_factory=list)

    def add(self, sample: MetricSample) -> None:
        self.samples.append(sample)

    def _stat(self, name: str) -> tuple[float, float]:
        if not self.samples:
            raise ValueError(f"no samples recorded for method {self.method!r}")
        values = np.array([getattr(s, name) for s in self.samples])
        return float(values.mean()), float(values.std())

    @property
    def regret(self) -> tuple[float, float]:
        return self._stat("regret")

    @property
    def reliability(self) -> tuple[float, float]:
        return self._stat("reliability")

    @property
    def utilization(self) -> tuple[float, float]:
        return self._stat("utilization")

    def as_row(self, digits: int = 3) -> list[str]:
        return [
            self.method,
            format_mean_std(*self.regret, digits=digits),
            format_mean_std(*self.reliability, digits=digits),
            format_mean_std(*self.utilization, digits=digits),
        ]


def aggregate(method: str, samples: Iterable[MetricSample]) -> MethodReport:
    """Build a report from an iterable of samples."""
    report = MethodReport(method)
    for s in samples:
        report.add(s)
    return report


def comparison_table(
    reports: "Mapping[str, MethodReport] | Iterable[MethodReport]",
    *,
    title: str | None = None,
    digits: int = 3,
) -> Table:
    """Render the paper's Method | Regret | Reliability | Utilization table."""
    if isinstance(reports, Mapping):
        reports = list(reports.values())
    table = Table(["Method", "Regret", "Reliability", "Utilization"], title=title)
    for report in reports:
        table.add_row(report.as_row(digits=digits))
    return table
