"""Evaluation metrics of §4.1.3: regret, reliability, cluster utilization."""

from repro.metrics.calibration import (
    ReliabilityCalibration,
    TimeAccuracy,
    per_task_rank_accuracy,
    reliability_calibration,
    time_accuracy,
)
from repro.metrics.regret import (
    RegretBreakdown,
    deployment_matching,
    regret,
    regret_breakdown,
)
from repro.metrics.reliability import constraint_satisfied, mean_assigned_reliability
from repro.metrics.report import MetricSample, MethodReport, aggregate, comparison_table
from repro.metrics.utilization import cluster_utilization, load_imbalance

__all__ = [
    "regret",
    "regret_breakdown",
    "RegretBreakdown",
    "deployment_matching",
    "mean_assigned_reliability",
    "constraint_satisfied",
    "cluster_utilization",
    "load_imbalance",
    "MetricSample",
    "MethodReport",
    "aggregate",
    "comparison_table",
    "TimeAccuracy",
    "time_accuracy",
    "ReliabilityCalibration",
    "reliability_calibration",
    "per_task_rank_accuracy",
]
