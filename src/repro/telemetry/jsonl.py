"""Parse and aggregate JSONL run logs written by the :class:`Recorder`.

The round-trip contract (asserted in ``tests/test_telemetry.py``): for any
run, ``aggregate_events(load_run(path))`` reconstructs exactly the
aggregate the recorder rendered into its console summary — spans rebuilt
from the individual span events, metrics taken from the flushed state
lines.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.recorder import SUPPORTED_SCHEMAS

__all__ = ["load_run", "aggregate_events", "meta_of"]


def load_run(path: str | Path) -> list[dict]:
    """All events of one run log, in file order; validates the header.

    An empty (or whitespace-only) file raises a clear ``ValueError``
    rather than surfacing downstream ``IndexError``s.  A *trailing*
    partial line — the signature of a run killed mid-write — is dropped
    silently so a crashed run's log stays loadable; an invalid line
    anywhere before the tail is still an error (that is corruption, not
    truncation).
    """
    with open(path) as fh:
        lines = fh.readlines()
    payload = [(i, raw.strip()) for i, raw in enumerate(lines) if raw.strip()]
    if not payload:
        raise ValueError(f"{path}: empty run log (no events)")
    events: list[dict] = []
    for pos, (lineno, raw) in enumerate(payload):
        try:
            events.append(json.loads(raw))
        except json.JSONDecodeError as exc:
            if pos == len(payload) - 1:
                break  # truncated tail from a crashed run: tolerate
            raise ValueError(f"{path}:{lineno + 1}: invalid JSON line") from exc
    if not events:
        raise ValueError(f"{path}: empty run log (no complete events)")
    if events[0].get("type") != "meta":
        raise ValueError(f"{path}: missing meta header line")
    schema = events[0].get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(f"{path}: unsupported schema {schema!r} "
                         f"(expected one of {SUPPORTED_SCHEMAS})")
    return events


def meta_of(events: list[dict]) -> dict:
    """The run-metadata header of a loaded event list."""
    return events[0]


def aggregate_events(events: list[dict]) -> dict:
    """Rebuild the recorder's canonical aggregate from raw events.

    Spans are re-accumulated from the per-call ``span`` events; counters,
    gauges and histograms come from their flushed ``metric`` lines.
    """
    spans: dict[str, dict] = {}
    counters: dict[str, dict] = {}
    gauges: dict[str, dict] = {}
    hists: dict[str, dict] = {}
    for ev in events:
        kind = ev.get("type")
        if kind == "span":
            agg = spans.setdefault(ev["path"], {"total_s": 0.0, "calls": 0, "errors": 0})
            agg["total_s"] += ev["dur_s"]
            agg["calls"] += 1
            if not ev.get("ok", True):
                agg["errors"] += 1
        elif kind == "metric":
            state = {k: v for k, v in ev.items()
                     if k not in ("type", "kind", "name", "seq")}
            {"counter": counters, "gauge": gauges, "histogram": hists}[ev["kind"]][
                ev["name"]
            ] = state
    return {
        "spans": dict(sorted(spans.items())),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(hists.items())),
    }
