"""repro.telemetry — dependency-free instrumentation for the whole stack.

Three primitives (see DESIGN.md §8):

- **spans** — hierarchical, contextvar-nested wall-clock sections
  (``with telemetry.span("train/solve"): ...``);
- **metric instruments** — counters, gauges and fixed-bucket histograms
  for cheap distribution capture (solver iterations, cascade levels,
  estimator variance, queue depths);
- **recorder** — a run-scoped sink that aggregates everything, renders an
  end-of-run console summary and (mode ``"jsonl"``) writes a versioned,
  diffable JSONL run log under ``results/telemetry/``.

Instrumented library code calls the module-level helpers unconditionally;
when no recorder is active they dispatch to the shared no-op recorder at
the cost of a single branch, so the disabled mode is effectively free
(gated at <2% of a training epoch by ``benchmarks/bench_micro.py``).

>>> from repro import telemetry
>>> with telemetry.recording(mode="summary") as rec:
...     with telemetry.span("demo"):
...         telemetry.observe("demo/value", 3.0)
"""

from repro.telemetry.journey import (
    EXEMPLAR_EVENT,
    JOURNEY_EVENT,
    TERMINAL_STATES,
    TRANSITIONS,
    WAIT_BUCKETS_H,
    JourneyRecorder,
    audit_journeys,
    journey_sampled,
    journeys_from_events,
    merge_exemplar_payloads,
    render_waterfall,
    stitch_journeys,
    trace_id,
)
from repro.telemetry.jsonl import aggregate_events, load_run, meta_of
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    ITER_BUCKETS,
    LEVEL_BUCKETS,
    SIZE_BUCKETS,
    TIME_BUCKETS_S,
    VARIANCE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    quantile,
)
from repro.telemetry.profiler import NULL_PROFILER, NullStageProfiler, StageProfiler
from repro.telemetry.recorder import (
    MODES,
    NULL,
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    NullRecorder,
    Recorder,
    counter_add,
    event,
    gauge_set,
    get_recorder,
    observe,
    recording,
    run_metadata,
    span,
)
from repro.telemetry.registry import (
    MetricRegistry,
    aggregate_runs,
    merge_aggregates,
    series_key,
    split_series_key,
)
from repro.telemetry.spans import NULL_SPAN, Span, current_path

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "MODES",
    "Recorder",
    "NullRecorder",
    "NULL",
    "get_recorder",
    "recording",
    "span",
    "counter_add",
    "gauge_set",
    "observe",
    "event",
    "run_metadata",
    "Span",
    "NULL_SPAN",
    "current_path",
    "Counter",
    "Gauge",
    "Histogram",
    "quantile",
    "DEFAULT_BUCKETS",
    "ITER_BUCKETS",
    "LEVEL_BUCKETS",
    "SIZE_BUCKETS",
    "TIME_BUCKETS_S",
    "VARIANCE_BUCKETS",
    "load_run",
    "aggregate_events",
    "meta_of",
    "MetricRegistry",
    "series_key",
    "split_series_key",
    "merge_aggregates",
    "aggregate_runs",
    "StageProfiler",
    "NullStageProfiler",
    "NULL_PROFILER",
    "JOURNEY_EVENT",
    "EXEMPLAR_EVENT",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "WAIT_BUCKETS_H",
    "JourneyRecorder",
    "trace_id",
    "journey_sampled",
    "journeys_from_events",
    "stitch_journeys",
    "audit_journeys",
    "merge_exemplar_payloads",
    "render_waterfall",
]
