"""Critical-path latency-budget profiler for the serving loop.

``ServeStats.decide_seconds`` says how long each window's decision took;
it cannot say *where* the time went — admission queueing vs batch
formation vs predict vs the relaxed solve vs rounding vs monitor
callbacks.  :class:`StageProfiler` decomposes every dispatched window's
end-to-end handling latency into named stages and answers exactly that:

- **wall-clock stages** — ``with prof.stage("solve"): ...`` around each
  section of the dispatcher's window handling.  Stages nest: the method
  layer runs its relaxed solve and rounding under the dispatcher's
  ``solve`` stage, producing ``solve;relaxed`` / ``solve;rounding``
  paths.  Every path keeps its raw per-window durations, so the budget
  reports true p50/p95/p99 per stage (not bucket estimates) plus
  *self-time* (total minus time attributed to child stages);
- **simulated-time stages** — per-task admission-queue wait and
  per-window batch-formation wait, in platform hours.  These are
  simulated quantities (they exist even on an infinitely fast machine),
  so they are reported in their own section and never mixed into the
  wall-clock coverage accounting;
- **window framing** — :meth:`begin_window`/:meth:`end_window` bracket
  one window's handling.  The residual between the measured end-to-end
  wall time and the sum of depth-1 stage durations is reported as
  ``unattributed`` — the budget's honesty term.  The headline
  ``coverage_p95`` is p95(attributed) / p95(end-to-end) across windows;
  the serve benchmark gates it at >= 0.95;
- **flamegraph export** — :meth:`collapsed_stacks` emits the standard
  collapsed-stack format (``frame;frame count``, counts in integer
  microseconds of *self* time), directly loadable by speedscope and
  ``flamegraph.pl``.

The profiler records wall-clock only and draws no randomness, so a
profiled run's assignment trace is byte-identical to an unprofiled one;
when off, the dispatcher holds :data:`NULL_PROFILER`, whose methods are
no-ops (a few calls per *window*, not per task — gated with the
telemetry off-mode overhead bound in ``benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

__all__ = ["StageProfiler", "NullStageProfiler", "NULL_PROFILER"]


class _NullStage:
    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_STAGE = _NullStage()


class NullStageProfiler:
    """Disabled profiler: every hook is a no-op."""

    enabled = False
    events_recorded = 0

    def stage(self, name: str) -> _NullStage:
        return _NULL_STAGE

    def begin_window(self) -> None:
        pass

    def end_window(self) -> None:
        pass

    def observe_sim(self, name: str, hours: float, n: int = 1) -> None:
        pass


NULL_PROFILER = NullStageProfiler()


class _Stage:
    """One open wall-clock stage (context manager handed out by
    :meth:`StageProfiler.stage`)."""

    __slots__ = ("prof", "name", "t0")

    def __init__(self, prof: "StageProfiler", name: str) -> None:
        self.prof = prof
        self.name = name

    def __enter__(self) -> "_Stage":
        self.prof._stack.append(self.name)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        dur = time.perf_counter() - self.t0
        prof = self.prof
        path = ";".join(prof._stack)
        prof._stack.pop()
        durs = prof._paths.get(path)
        if durs is None:
            durs = prof._paths[path] = []
        durs.append(dur)
        if not prof._stack:  # depth-1: counts toward window attribution
            prof._window_attributed += dur
        prof.events_recorded += 1


def _pcts(values: "list[float]") -> dict:
    arr = np.asarray(values, dtype=float)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
    }


class StageProfiler:
    """Accumulates the per-stage latency budget of a dispatcher run."""

    enabled = True

    def __init__(self) -> None:
        self._stack: "list[str]" = []
        #: stage path ("a" or "a;b") -> raw per-call wall durations (s).
        self._paths: "dict[str, list[float]]" = {}
        #: simulated-time stage -> raw observations (platform hours).
        self._sim: "dict[str, list[float]]" = {}
        self._windows_e2e: "list[float]" = []
        self._windows_attr: "list[float]" = []
        self._window_t0 = 0.0
        self._window_attributed = 0.0
        self.events_recorded = 0

    # ------------------------------------------------------------------ #
    # Recording hooks (called from the dispatcher / method layer).
    # ------------------------------------------------------------------ #

    def stage(self, name: str) -> _Stage:
        """Open a named wall-clock stage (nests under any open stage)."""
        return _Stage(self, name)

    def begin_window(self) -> None:
        self._window_t0 = time.perf_counter()
        self._window_attributed = 0.0

    def end_window(self) -> None:
        e2e = time.perf_counter() - self._window_t0
        self._windows_e2e.append(e2e)
        self._windows_attr.append(self._window_attributed)
        self.events_recorded += 1

    def observe_sim(self, name: str, hours: float, n: int = 1) -> None:
        """Record a simulated-time stage observation (platform hours)."""
        obs = self._sim.get(name)
        if obs is None:
            obs = self._sim[name] = []
        obs.extend([float(hours)] * n)
        self.events_recorded += 1

    # ------------------------------------------------------------------ #
    # Reporting.
    # ------------------------------------------------------------------ #

    def budget(self) -> dict:
        """The latency budget: per-stage totals/percentiles/self-time,
        end-to-end percentiles, and the unattributed residual."""
        stages: "dict[str, dict]" = {}
        for path, durs in sorted(self._paths.items()):
            total = float(sum(durs))
            child_total = sum(
                sum(d) for p, d in self._paths.items()
                if p.startswith(path + ";") and p.count(";") == path.count(";") + 1
            )
            stages[path] = {
                "total_s": total,
                "calls": len(durs),
                "self_s": float(total - child_total),
                **_pcts(durs),
            }
        sim = {
            name: {"total_hours": float(sum(obs)), "calls": len(obs), **_pcts(obs)}
            for name, obs in sorted(self._sim.items())
        }
        n = len(self._windows_e2e)
        if n == 0:
            return {"windows": 0, "stages": stages, "sim_stages": sim,
                    "e2e": {}, "unattributed": {}, "coverage_p95": 0.0}
        e2e = np.asarray(self._windows_e2e)
        attr = np.asarray(self._windows_attr)
        resid = np.maximum(e2e - attr, 0.0)
        e2e_p95 = float(np.percentile(e2e, 95))
        attr_p95 = float(np.percentile(attr, 95))
        return {
            "windows": n,
            "e2e": {"total_s": float(e2e.sum()), **_pcts(list(e2e))},
            "stages": stages,
            "sim_stages": sim,
            "unattributed": {
                "total_s": float(resid.sum()),
                "frac": float(resid.sum() / e2e.sum()) if e2e.sum() > 0 else 0.0,
                **_pcts(list(resid)),
            },
            # How much of the p95 end-to-end window latency the named
            # stages explain — the ISSUE's >=95% acceptance headline.
            "coverage_p95": float(attr_p95 / e2e_p95) if e2e_p95 > 0 else 1.0,
        }

    def collapsed_stacks(self, root: str = "window") -> "list[str]":
        """Collapsed-stack lines (``frame;frame count``), counts = integer
        microseconds of self-time, compatible with speedscope /
        ``flamegraph.pl``.  The unattributed residual appears as the
        root's own self-time."""
        lines: "list[str]" = []
        budget = self.budget()
        resid_us = int(round(budget.get("unattributed", {}).get("total_s", 0.0) * 1e6))
        if resid_us > 0:
            lines.append(f"{root} {resid_us}")
        for path, s in budget["stages"].items():
            self_us = int(round(s["self_s"] * 1e6))
            if self_us > 0:
                lines.append(f"{root};{path} {self_us}")
        return lines

    def write_flamegraph(self, path: "str | Path") -> Path:
        """Write the collapsed-stack profile to ``path`` and return it."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text("\n".join(self.collapsed_stacks()) + "\n")
        return out
