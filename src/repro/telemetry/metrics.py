"""Typed metric instruments: counters, gauges, fixed-bucket histograms.

All instruments are plain in-memory accumulators — observing is a couple
of dict/float operations, so they are cheap enough for solver hot loops
when telemetry is enabled, and cost one branch when it is not (the
module-level helpers in :mod:`repro.telemetry.recorder` guard every call
with ``recorder.enabled``).

Histograms use *fixed* bucket boundaries chosen at creation (Prometheus
``le`` semantics: bucket ``i`` counts values ``bounds[i-1] < v <=
bounds[i]``, with one overflow bucket above the last boundary).  Fixed
boundaries keep observation O(log #buckets) and make aggregates from
different runs mergeable bucket-by-bucket.
"""

from __future__ import annotations

from bisect import bisect_left
from math import isfinite

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "quantile",
    "ITER_BUCKETS",
    "LEVEL_BUCKETS",
    "SIZE_BUCKETS",
    "VARIANCE_BUCKETS",
    "TIME_BUCKETS_S",
    "DEFAULT_BUCKETS",
]

#: Solver iterations-to-converge (Algorithm 1 / batch mirror descent).
ITER_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 30.0, 50.0, 80.0, 120.0, 200.0, 300.0, 500.0)
#: Halving-cascade levels (step = lr / 2^h, h small).
LEVEL_BUCKETS = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)
#: Batch sizes / queue depths.
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)
#: Zeroth-order estimator sample variances (log-spaced decades).
VARIANCE_BUCKETS = tuple(10.0**e for e in range(-8, 5))
#: Wall-clock durations in seconds (log-spaced).
TIME_BUCKETS_S = tuple(10.0**e for e in range(-6, 3))
#: Generic fallback boundaries (log-spaced decades around 1.0).
DEFAULT_BUCKETS = tuple(10.0**e for e in range(-4, 5))


class Counter:
    """Monotonic accumulator (float increments allowed)."""

    __slots__ = ("name", "value", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.calls = 0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        self.value += amount
        self.calls += 1

    def state(self) -> dict:
        return {"value": self.value, "calls": self.calls}


class Gauge:
    """Last-value instrument."""

    __slots__ = ("name", "value", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.calls = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.calls += 1

    def state(self) -> dict:
        return {"value": self.value, "calls": self.calls}


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max sidecars."""

    __slots__ = ("name", "bounds", "counts", "count", "total", "vmin", "vmax", "calls")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        b = tuple(float(x) for x in bounds)
        if len(b) < 1 or any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError(f"histogram {name!r}: bounds must be strictly increasing")
        self.name = name
        self.bounds = b
        self.counts = [0] * (len(b) + 1)  # last slot = overflow (> bounds[-1])
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self.calls = 0

    def observe(self, value: float, n: int = 1) -> None:
        """Record ``n`` occurrences of ``value`` (bulk form for vectorized
        call sites such as the cascade-level counts)."""
        if n <= 0:
            return
        v = float(value)
        self.counts[bisect_left(self.bounds, v)] += n
        self.count += n
        self.total += v * n
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v
        self.calls += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def state(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "calls": self.calls,
        }


def quantile(histogram: "Histogram | dict", q: float) -> float:
    """Upper-boundary quantile estimate from cumulative bucket counts.

    Accepts a live :class:`Histogram` or its :meth:`Histogram.state` dict
    (the form stored in JSONL ``metric`` lines and returned by
    ``Recorder.aggregate()``/``aggregate_events``).  The estimate is the
    upper boundary of the bucket containing the ``q``-quantile — exact to
    bucket resolution, and the single shared implementation behind the
    recorder's console summary, ``bench_serve.py`` and the quality
    monitor.

    The result is always a finite float:

    - an *empty* histogram (``count == 0`` or no ``counts``) returns 0.0;
    - a quantile landing in the *overflow* bucket returns the observed
      maximum when the state carries a finite ``max`` sidecar, and falls
      back to the last bucket boundary (the largest finite value the
      buckets can attest) when ``max`` is missing, ``None``, or
      non-finite — merged or hand-built states routinely lack it, and a
      bucket-resolution estimate must never surface ``+inf``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    h = histogram.state() if isinstance(histogram, Histogram) else histogram
    counts = h.get("counts") or []
    if not h.get("count") or not counts:
        return 0.0
    bounds = h["bounds"]

    def overflow_value() -> float:
        vmax = h.get("max")
        if isinstance(vmax, (int, float)) and isfinite(vmax):
            return float(vmax)
        return float(bounds[-1])

    target = q * h["count"]
    cum = 0
    for i, c in enumerate(counts):
        cum += c
        if cum >= target and c:
            return float(bounds[i]) if i < len(bounds) else overflow_value()
    return overflow_value()
