"""Labeled metric series: the registry behind the run recorder.

The PR-2 instruments were *bare singletons* — one :class:`Counter` per
name, no dimensions.  A sharded platform needs the same metric name to
carry several concurrent series (``serve/windows{shard="0"}`` vs
``{shard="1"}``), and a fleet view needs series from different recorders
to merge without collisions.  :class:`MetricRegistry` provides both:

- **labeled series** — every instrument call may carry a ``labels`` dict
  (e.g. ``{"shard": "0", "predictor_version": "v3"}``).  A registry can
  also hold *base labels* applied to every series it records — the
  per-recorder identity (``shard``/``instance``) a sharded deployment
  stamps on all of its metrics;
- **canonical series keys** — a series is identified by
  ``name{k="v",...}`` with label pairs sorted and values escaped, the
  exact grammar Prometheus uses, so keys are deterministic and the JSONL
  metric lines / aggregates stay diffable and mergeable;
- **thread-safe snapshots** — all mutation and :meth:`snapshot` go
  through one lock, so the live ``/metrics`` scrape endpoint
  (:mod:`repro.monitor.live`) can read a consistent view mid-run while
  the serving loop records;
- **fleet merge** — :func:`merge_aggregates` folds any number of
  canonical aggregates (live ``Recorder.aggregate()`` dicts or
  ``aggregate_events(load_run(path))`` reconstructions) into one view:
  counters and histograms sum, spans accumulate, gauges keep the last
  writer.  Series keyed by distinct labels never collide, so per-shard
  series survive the merge losslessly — the pre-work for the ROADMAP's
  sharded multi-dispatcher item.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from repro.telemetry.metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram

__all__ = [
    "MetricRegistry",
    "series_key",
    "split_series_key",
    "merge_aggregates",
    "aggregate_runs",
]


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _check_labels(labels: Mapping[str, str]) -> "dict[str, str]":
    out: "dict[str, str]" = {}
    for k, v in labels.items():
        if not isinstance(k, str) or not k or not k.replace("_", "a").isalnum() \
                or k[0].isdigit():
            raise ValueError(f"invalid label name {k!r} (want [a-zA-Z_][a-zA-Z0-9_]*)")
        out[k] = str(v)
    return out


def series_key(name: str, labels: "Mapping[str, str] | None" = None) -> str:
    """Canonical key of one series: ``name`` or ``name{k="v",...}``.

    Label pairs are sorted by key, so the same (name, labels) always maps
    to the same key regardless of insertion order.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


def split_series_key(key: str) -> "tuple[str, str]":
    """Split a series key into ``(name, label_suffix)``.

    ``label_suffix`` is ``""`` for unlabeled series and the literal
    ``{k="v",...}`` text otherwise (already in exposition grammar).
    """
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]


class MetricRegistry:
    """Thread-safe registry of labeled counter/gauge/histogram series."""

    def __init__(self, base_labels: "Mapping[str, str] | None" = None) -> None:
        self.base_labels = _check_labels(base_labels or {})
        self.lock = threading.RLock()
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._hists: "dict[str, Histogram]" = {}
        #: series key -> merged label dict (labeled series only).
        self._labels: "dict[str, dict[str, str]]" = {}

    # ------------------------------------------------------------------ #

    def _key(self, name: str, labels: "Mapping[str, str] | None") -> "tuple[str, dict]":
        if labels:
            merged = dict(self.base_labels)
            merged.update(_check_labels(labels))
        else:
            merged = self.base_labels
        return series_key(name, merged), merged

    def counter_add(self, name: str, amount: float = 1.0,
                    labels: "Mapping[str, str] | None" = None) -> None:
        key, merged = self._key(name, labels)
        with self.lock:
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = Counter(key)
                if merged:
                    self._labels[key] = dict(merged)
            c.add(amount)

    def gauge_set(self, name: str, value: float,
                  labels: "Mapping[str, str] | None" = None) -> None:
        key, merged = self._key(name, labels)
        with self.lock:
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = Gauge(key)
                if merged:
                    self._labels[key] = dict(merged)
            g.set(value)

    def observe(self, name: str, value: float, n: int = 1,
                bounds: "tuple[float, ...] | None" = None,
                labels: "Mapping[str, str] | None" = None) -> None:
        key, merged = self._key(name, labels)
        with self.lock:
            h = self._hists.get(key)
            if h is None:
                h = self._hists[key] = Histogram(key, bounds or DEFAULT_BUCKETS)
                if merged:
                    self._labels[key] = dict(merged)
            h.observe(value, n)

    # ------------------------------------------------------------------ #

    def _state(self, key: str, instrument) -> dict:
        state = instrument.state()
        labels = self._labels.get(key)
        if labels:
            state["labels"] = dict(labels)
        return state

    def snapshot(self) -> dict:
        """Consistent point-in-time view: the canonical aggregate sections.

        Returned dicts are fresh copies — safe to serialize or mutate
        after the lock is released.
        """
        with self.lock:
            return {
                "counters": {k: self._state(k, c)
                             for k, c in sorted(self._counters.items())},
                "gauges": {k: self._state(k, g)
                           for k, g in sorted(self._gauges.items())},
                "histograms": {k: self._state(k, h)
                               for k, h in sorted(self._hists.items())},
            }

    def __len__(self) -> int:
        with self.lock:
            return len(self._counters) + len(self._gauges) + len(self._hists)


# --------------------------------------------------------------------- #
# Fleet-level aggregation.
# --------------------------------------------------------------------- #


def _merge_counter(into: dict, state: dict) -> None:
    into["value"] = into.get("value", 0.0) + state.get("value", 0.0)
    into["calls"] = into.get("calls", 0) + state.get("calls", 0)


def _merge_gauge(into: dict, state: dict) -> None:
    into["value"] = state.get("value", 0.0)  # last writer wins
    into["calls"] = into.get("calls", 0) + state.get("calls", 0)


def _merge_histogram(key: str, into: dict, state: dict) -> None:
    if list(into["bounds"]) != list(state["bounds"]):
        raise ValueError(
            f"histogram {key!r}: cannot merge mismatched bucket bounds "
            f"{into['bounds']} vs {state['bounds']}"
        )
    into["counts"] = [a + b for a, b in zip(into["counts"], state["counts"])]
    into["count"] += state.get("count", 0)
    into["sum"] += state.get("sum", 0.0)
    into["calls"] = into.get("calls", 0) + state.get("calls", 0)
    mins = [v for v in (into.get("min"), state.get("min")) if v is not None]
    maxs = [v for v in (into.get("max"), state.get("max")) if v is not None]
    into["min"] = min(mins) if mins else None
    into["max"] = max(maxs) if maxs else None


def merge_aggregates(aggregates: "Iterable[dict]") -> dict:
    """Fold canonical aggregates into one fleet view.

    Series are matched by their full series key (name + sorted labels),
    so series recorded under distinct ``shard``/``instance`` labels stay
    distinct — the merge is lossless for labeled fleets.  On a key
    collision, counters/histograms/spans accumulate (the natural
    semantics for additive instruments) and gauges keep the last input's
    value; histogram merges require identical bucket bounds.
    """
    spans: "dict[str, dict]" = {}
    counters: "dict[str, dict]" = {}
    gauges: "dict[str, dict]" = {}
    hists: "dict[str, dict]" = {}
    for agg in aggregates:
        for path, s in agg.get("spans", {}).items():
            into = spans.setdefault(path, {"total_s": 0.0, "calls": 0, "errors": 0})
            into["total_s"] += s.get("total_s", 0.0)
            into["calls"] += s.get("calls", 0)
            into["errors"] += s.get("errors", 0)
        for key, s in agg.get("counters", {}).items():
            into = counters.setdefault(key, {"value": 0.0, "calls": 0})
            if "labels" in s:
                into.setdefault("labels", dict(s["labels"]))
            _merge_counter(into, s)
        for key, s in agg.get("gauges", {}).items():
            into = gauges.setdefault(key, {"value": 0.0, "calls": 0})
            if "labels" in s:
                into.setdefault("labels", dict(s["labels"]))
            _merge_gauge(into, s)
        for key, s in agg.get("histograms", {}).items():
            into = hists.get(key)
            if into is None:
                into = hists[key] = {
                    "bounds": list(s["bounds"]),
                    "counts": [0] * len(s["counts"]),
                    "count": 0, "sum": 0.0, "min": None, "max": None, "calls": 0,
                }
                if "labels" in s:
                    into["labels"] = dict(s["labels"])
            _merge_histogram(key, into, s)
    return {
        "spans": dict(sorted(spans.items())),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(hists.items())),
    }


def aggregate_runs(paths: "Iterable") -> dict:
    """One fleet view from several recorders' JSONL run logs.

    Loads each log (:func:`repro.telemetry.jsonl.load_run`), rebuilds its
    canonical aggregate, and merges — the offline counterpart of scraping
    N shard endpoints and summing on the Prometheus side.
    """
    from repro.telemetry.jsonl import aggregate_events, load_run

    return merge_aggregates(aggregate_events(load_run(p)) for p in paths)
