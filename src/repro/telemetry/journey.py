"""Per-task distributed tracing: journeys, stitching, audit, exemplars.

All observability so far is *aggregate* — per-window latency budgets
(:mod:`repro.telemetry.profiler`), per-run counters and histograms
(:mod:`repro.telemetry.registry`).  This module adds the per-task layer:
one **journey** per logical task, a causally ordered list of events
covering every decision the platform takes about it — fleet routing
(ring home vs. failover vs. load-aware pick), admission or shed,
queue wait, window membership and seed source, schedule/commit,
execution outcome or orphan re-queue, and label harvest into the
retraining buffer.  See DESIGN.md §16.

Design invariants:

- **Deterministic trace IDs.**  A journey is keyed by the task's logical
  arrival identity ``(task_id, arrival_hour)`` — the same key the
  :class:`repro.retrain.buffer.ReplayBuffer` uses for labels — hashed to
  a 16-hex trace ID.  An original run and its replay produce identical
  IDs (floats round-trip exactly through JSON).
- **No randomness, no trace perturbation.**  The sampling decision is a
  pure hash fraction of the trace ID; journeys never touch the
  dispatcher RNG or :meth:`ServeStats.trace_bytes`, so journeys-off runs
  are byte-identical and journeys-on runs differ only in telemetry.
- **Contiguous flush.**  Events buffer in memory per journey and flush
  to the active recorder as one contiguous block when the journey
  reaches a terminal state.  Shed, orphan-requeued and SLO-violating
  (long-wait) journeys are *always* flushed regardless of the sampling
  fraction — the tails are the journeys worth explaining.
- **Auditable.**  :func:`audit_journeys` checks each journey against the
  state machine in :data:`TRANSITIONS`, monotone timestamps, and (at
  sampling fraction 1.0) conservation against the run's final counters:
  every admitted task reaches exactly one terminal state.

Journey events ride the normal JSONL event stream as
``{"type": "event", "name": "journey", "trace": ..., "state": ...}``
lines (schema 3; schema-2 readers that ignore unknown event names parse
them unchanged).  Wait-bucket **exemplars** link the p95/p99 tail of the
queue-wait distribution to concrete trace IDs; they are summarized in a
single ``journey_exemplars`` event at end of run and surfaced by
``repro serve top`` and the ``/snapshot`` endpoint.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Mapping

__all__ = [
    "JOURNEY_EVENT",
    "EXEMPLAR_EVENT",
    "STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "WAIT_BUCKETS_H",
    "trace_id",
    "journey_sampled",
    "JourneyRecorder",
    "journeys_from_events",
    "stitch_journeys",
    "audit_journeys",
    "merge_exemplar_payloads",
    "render_waterfall",
]

#: Event name journeys are recorded under in the JSONL stream.
JOURNEY_EVENT = "journey"
#: End-of-run summary event carrying the wait-bucket exemplar table.
EXEMPLAR_EVENT = "journey_exemplars"

#: Valid successor states.  ``""`` is the start marker: a journey opens
#: with the fleet router's pick (``routed``) or, in a single-dispatcher
#: run, directly with admission (or an at-capacity reject ``shed``).
TRANSITIONS: "dict[str, tuple[str, ...]]" = {
    "": ("routed", "admitted", "shed"),
    "routed": ("admitted", "shed"),
    # ``admitted -> shed`` is the drop_oldest eviction; ``-> unserved``
    # a queue stranded by a full-horizon outage.
    "admitted": ("dispatched", "shed", "unserved"),
    "dispatched": ("scheduled",),
    "scheduled": ("harvested", "requeued", "completed", "failed"),
    "harvested": ("requeued", "completed", "failed"),
    "requeued": ("dispatched", "unserved"),
    "shed": (),
    "completed": (),
    "failed": (),
    "unserved": (),
}

STATES: "tuple[str, ...]" = tuple(s for s in TRANSITIONS if s)
#: States a journey ends in (exactly one per journey, as the last event).
TERMINAL_STATES = frozenset(s for s, nxt in TRANSITIONS.items() if s and not nxt)

#: Queue-wait exemplar bucket bounds, in platform hours.  The last
#: bucket is the implicit ``+Inf`` overflow.
WAIT_BUCKETS_H: "tuple[float, ...]" = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0)


def trace_id(task_id: int, arrival: float) -> str:
    """Deterministic 16-hex trace ID of one logical task arrival.

    Keyed exactly like replay-buffer labels: ``(task_id, arrival)``.
    ``repr`` round-trips floats exactly, so a replayed run regenerates
    identical IDs from its logged arrival breadcrumbs.
    """
    key = f"{int(task_id)}@{float(arrival)!r}".encode()
    return hashlib.sha256(key).hexdigest()[:16]


def journey_sampled(trace: str, fraction: float) -> bool:
    """Pure hash-fraction sampling decision (no RNG ever).

    The first 8 hex digits of the trace ID, scaled to ``[0, 1)``,
    compared against ``fraction`` — deterministic per task, uniform
    across tasks, identical between a run and its replay.
    """
    if fraction >= 1.0:
        return True
    if fraction <= 0.0:
        return False
    return int(trace[:8], 16) / float(1 << 32) < fraction


def _bucket_index(wait_hours: float) -> int:
    for i, bound in enumerate(WAIT_BUCKETS_H):
        if wait_hours <= bound:
            return i
    return len(WAIT_BUCKETS_H)


def _bucket_le(index: int) -> "float | str":
    return WAIT_BUCKETS_H[index] if index < len(WAIT_BUCKETS_H) else "+Inf"


class JourneyRecorder:
    """Buffers journey events per task and flushes terminal journeys.

    One instance per dispatcher run.  Call sites pay one attribute read
    plus an ``is not None`` check when journeys are off (the dispatcher
    holds ``None`` instead of an instance — the ``NullRecorder`` idiom).

    ``sample`` is the kept fraction for uneventful journeys; shed,
    requeued and long-wait (``wait >= slo_wait_hours``) journeys are
    always kept.  ``keep=True`` additionally retains flushed journeys in
    :attr:`kept` for in-process audits (benchmarks, tests) — recorder
    output is unaffected.
    """

    def __init__(self, sample: float, *, slo_wait_hours: float = 1.0,
                 keep: bool = False) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"journey sample must be in [0, 1], got {sample}")
        if slo_wait_hours <= 0:
            raise ValueError("slo_wait_hours must be positive")
        self.sample = float(sample)
        self.slo_wait_hours = float(slo_wait_hours)
        self.keep = bool(keep)
        #: journey key -> buffered event dicts (insertion order = causal
        #: order; the dispatcher only ever appends forward in time).
        self._pending: "dict[tuple[int, float], list[dict]]" = {}
        #: journey key -> True once a forced-keep condition was seen.
        self._forced: "set[tuple[int, float]]" = set()
        #: journey key -> max queue wait observed at dispatch (hours).
        self._max_wait: "dict[tuple[int, float], float]" = {}
        #: wait-bucket exemplars: index -> {"count", "trace", ...}.
        self._exemplars: "dict[int, dict]" = {}
        #: Flushed journeys retained when ``keep`` is set: trace -> events.
        self.kept: "dict[str, list[dict]]" = {}
        # Hook-call counter for the overhead gate (mirrors
        # ``StageProfiler.events_recorded``).
        self.events_recorded = 0
        self.journeys_emitted = 0
        self.journeys_sampled_out = 0
        self.journeys_forced = 0

    # ------------------------------------------------------------------ #

    def record(self, task_id: int, arrival: float, state: str, t: float,
               **fields: Any) -> None:
        """Append one journey event; flushes if ``state`` is terminal."""
        self.events_recorded += 1
        key = (int(task_id), float(arrival))
        ev = {"trace": trace_id(task_id, arrival), "task_id": int(task_id),
              "arrival": float(arrival), "state": state, "t": float(t)}
        ev.update({k: v for k, v in fields.items() if v is not None})
        events = self._pending.setdefault(key, [])
        events.append(ev)
        if state in ("shed", "requeued", "unserved"):
            # Shed tasks (rejects and drop_oldest evictions), requeued
            # orphans and stranded queues are always kept — the journeys
            # worth explaining never fall to sampling.
            self._forced.add(key)
        if state == "dispatched" and "wait_hours" in fields:
            wait = float(fields["wait_hours"])
            prev = self._max_wait.get(key, 0.0)
            if wait > prev:
                self._max_wait[key] = wait
            if wait >= self.slo_wait_hours:
                self._forced.add(key)
        if state in TERMINAL_STATES:
            self._flush(key)

    def _flush(self, key: "tuple[int, float]") -> None:
        events = self._pending.pop(key, None)
        if not events:
            return
        trace = events[0]["trace"]
        forced = key in self._forced
        self._forced.discard(key)
        wait = self._max_wait.pop(key, None)
        if not forced and not journey_sampled(trace, self.sample):
            self.journeys_sampled_out += 1
            return
        if forced:
            self.journeys_forced += 1
        self.journeys_emitted += 1
        if wait is not None:
            self._note_exemplar(trace, events[0]["task_id"], wait)
        from repro.telemetry.recorder import get_recorder

        rec = get_recorder()
        if rec.enabled:
            for ev in events:
                rec.event(JOURNEY_EVENT, **ev)
        if self.keep:
            self.kept[trace] = events

    def _note_exemplar(self, trace: str, task_id: int, wait: float) -> None:
        """Track the worst kept journey per wait bucket.

        Committed at flush time, so every exemplar's trace ID resolves
        to a journey actually present in the run log.
        """
        idx = _bucket_index(wait)
        cur = self._exemplars.get(idx)
        if cur is None:
            self._exemplars[idx] = {"count": 1, "trace": trace,
                                    "task_id": task_id, "wait_hours": wait}
        else:
            cur["count"] += 1
            if wait > cur["wait_hours"]:
                cur.update(trace=trace, task_id=task_id, wait_hours=wait)

    # ------------------------------------------------------------------ #

    def exemplars(self) -> "list[dict]":
        """The wait-bucket exemplar table, sorted by bucket bound."""
        return [
            {"le": _bucket_le(idx), **self._exemplars[idx]}
            for idx in sorted(self._exemplars)
        ]

    def exemplar_payload(self) -> dict:
        """Summary payload (the ``journey_exemplars`` event's fields)."""
        return {
            "sample": self.sample,
            "slo_wait_hours": self.slo_wait_hours,
            "emitted": self.journeys_emitted,
            "sampled_out": self.journeys_sampled_out,
            "forced": self.journeys_forced,
            "buckets": self.exemplars(),
        }

    def finish(self) -> dict:
        """End of run: flush any residue and emit the exemplar summary.

        The dispatcher terminalizes every journey before calling this
        (queued leftovers become ``unserved``); residue here would be a
        conservation bug, so it is flushed force-kept for the auditor to
        flag rather than silently discarded.
        """
        for key in list(self._pending):
            self._forced.add(key)
            self._flush(key)
        payload = self.exemplar_payload()
        from repro.telemetry.recorder import get_recorder

        rec = get_recorder()
        if rec.enabled:
            rec.event(EXEMPLAR_EVENT, **payload)
        return payload


# --------------------------------------------------------------------- #
# Stitching: journeys back out of run logs.
# --------------------------------------------------------------------- #


def journeys_from_events(events: "Iterable[Mapping]",
                         shard: "str | None" = None,
                         ) -> "dict[str, list[dict]]":
    """Group one log's ``journey`` events by trace ID, in file order.

    The recorder preserves emission order and journeys flush
    contiguously, so per-trace file order *is* causal order.  ``shard``
    stamps each event with the emitting shard (used by the cross-shard
    stitcher; single-run callers omit it).
    """
    out: "dict[str, list[dict]]" = {}
    for ev in events:
        if ev.get("type") != "event" or ev.get("name") != JOURNEY_EVENT:
            continue
        e = {k: v for k, v in ev.items() if k not in ("type", "name", "seq")}
        if shard is not None:
            e.setdefault("shard", shard)
        out.setdefault(str(e.get("trace")), []).append(e)
    return out


def stitch_journeys(paths) -> "dict[str, list[dict]]":
    """Reassemble task journeys from merged per-shard run logs.

    Each journey lives in exactly one shard's log (the shard that served
    the task — its ``routed`` event records the ring *home*, which may
    differ under failover).  Events are stamped with the emitting
    shard's identity from the log's meta header.  A trace appearing in
    several logs is kept concatenated (log order per shard) so
    :func:`audit_journeys` flags the duplication instead of hiding it.
    """
    from repro.telemetry.jsonl import load_run, meta_of

    merged: "dict[str, list[dict]]" = {}
    for path in paths:
        events = load_run(path)
        serve = meta_of(events).get("serve") or {}
        shard = serve.get("shard")
        for trace, evs in journeys_from_events(
                events, shard=None if shard is None else str(shard)).items():
            merged.setdefault(trace, []).extend(evs)
    return merged


# --------------------------------------------------------------------- #
# Causality audit.
# --------------------------------------------------------------------- #


def audit_journeys(journeys: "Mapping[str, list[dict]]", *,
                   expect: "Mapping[str, Any] | None" = None,
                   sample: float = 1.0) -> "list[str]":
    """Audit journeys; returns problem strings (empty = clean).

    Per journey: known states, transitions valid per
    :data:`TRANSITIONS`, timestamps non-decreasing, a consistent
    ``(task_id, arrival)`` identity matching the trace ID, exactly one
    terminal state and it is the final event, and (stitched input) all
    events from one shard.

    ``expect`` — a ``serve/run_stats``-shaped mapping — enables the
    conservation layer when ``sample >= 1``: one journey per arrival;
    terminal-state counts equal to the run's shed/completed/failed/
    unserved counters; dispatch and requeue event totals equal to
    ``matched`` and ``requeued``.  Under partial sampling only the
    per-journey checks run (the flushed subset is not a census).
    """
    problems: "list[str]" = []
    terminals = {s: 0 for s in TERMINAL_STATES}
    dispatched = requeued = admitted = 0

    for trace in sorted(journeys):
        events = journeys[trace]
        tag = f"journey {trace}"
        if not events:
            problems.append(f"{tag}: empty event list")
            continue
        ident = (events[0].get("task_id"), events[0].get("arrival"))
        if None in ident:
            problems.append(f"{tag}: events missing task identity")
            continue
        if trace_id(ident[0], ident[1]) != trace:
            problems.append(
                f"{tag}: trace ID does not hash from task {ident[0]} "
                f"@ {ident[1]}")
        # The routed preamble carries the router's (int) shard pick; the
        # stitcher stamps the emitting log's (str) identity — normalize.
        shards = {str(e["shard"]) for e in events
                  if e.get("shard") is not None}
        if len(shards) > 1:
            problems.append(
                f"{tag}: events span shards {sorted(shards)} — per-shard "
                "logs double-delivered one task")
        prev_state, prev_t = "", None
        terminal_seen = None
        for i, ev in enumerate(events):
            state = ev.get("state")
            t = ev.get("t")
            if state not in TRANSITIONS or not state:
                problems.append(f"{tag}[{i}]: unknown state {state!r}")
                break
            if (ev.get("task_id"), ev.get("arrival")) != ident:
                problems.append(
                    f"{tag}[{i}]: task identity drifted within journey")
            if terminal_seen is not None:
                problems.append(
                    f"{tag}[{i}]: event after terminal state "
                    f"{terminal_seen!r}")
                break
            if state not in TRANSITIONS[prev_state]:
                problems.append(
                    f"{tag}[{i}]: invalid transition "
                    f"{prev_state or '<start>'} -> {state}")
            if prev_t is not None and t is not None and t < prev_t - 1e-9:
                problems.append(
                    f"{tag}[{i}]: time went backwards "
                    f"({prev_t:.6g} -> {t:.6g})")
            if state in TERMINAL_STATES:
                terminal_seen = state
            if state == "dispatched":
                dispatched += 1
            elif state == "requeued":
                requeued += 1
            elif state == "admitted":
                admitted += 1
            prev_state, prev_t = state, (t if t is not None else prev_t)
        if terminal_seen is None:
            problems.append(f"{tag}: no terminal state")
        else:
            terminals[terminal_seen] += 1

    if expect is not None and sample >= 1.0:
        served = terminals["completed"] + terminals["failed"]
        checks = [
            ("journeys", len(journeys), expect.get("arrived")),
            ("admitted journeys reaching a terminal state",
             admitted, expect.get("arrived", 0) - _rejects(journeys)),
            ("shed terminals", terminals["shed"], expect.get("shed")),
            ("completed terminals", terminals["completed"],
             expect.get("completed")),
            ("failed terminals", terminals["failed"], expect.get("failed")),
            ("unserved terminals", terminals["unserved"],
             expect.get("unserved")),
            ("served terminals", served,
             None if expect.get("completed") is None
             else expect.get("completed", 0) + expect.get("failed", 0)),
            ("dispatched events", dispatched, expect.get("matched")),
            ("requeued events", requeued, expect.get("requeued")),
        ]
        for label, got, want in checks:
            if want is not None and got != want:
                problems.append(
                    f"conservation: {label} = {got}, run counters say {want}")
    return problems


def _rejects(journeys: "Mapping[str, list[dict]]") -> int:
    """Journeys shed at admission (never admitted): arrivals that held
    no queue slot, excluded from the admitted-task conservation term."""
    n = 0
    for events in journeys.values():
        states = [e.get("state") for e in events]
        if "admitted" not in states and states and states[-1] == "shed":
            n += 1
    return n


# --------------------------------------------------------------------- #
# Exemplar merge + terminal rendering.
# --------------------------------------------------------------------- #


def merge_exemplar_payloads(payloads: "Iterable[Mapping]") -> "dict | None":
    """Fold per-shard ``journey_exemplars`` payloads into one table.

    Counts sum per bucket; each bucket keeps the worst (longest-wait)
    shard's exemplar trace.  Returns ``None`` for no payloads.
    """
    payloads = [p for p in payloads if p]
    if not payloads:
        return None
    buckets: "dict[str, dict]" = {}
    merged: "dict[str, Any]" = {
        "sample": max(float(p.get("sample", 0.0)) for p in payloads),
        "emitted": sum(int(p.get("emitted", 0)) for p in payloads),
        "sampled_out": sum(int(p.get("sampled_out", 0)) for p in payloads),
        "forced": sum(int(p.get("forced", 0)) for p in payloads),
    }
    for p in payloads:
        for b in p.get("buckets", ()):
            key = str(b.get("le"))
            cur = buckets.get(key)
            if cur is None:
                buckets[key] = dict(b)
            else:
                cur["count"] = cur.get("count", 0) + b.get("count", 0)
                if b.get("wait_hours", 0.0) > cur.get("wait_hours", 0.0):
                    cur.update(trace=b.get("trace"), task_id=b.get("task_id"),
                               wait_hours=b.get("wait_hours"))

    def bound(b: dict) -> float:
        le = b.get("le")
        return float("inf") if le == "+Inf" else float(le)

    merged["buckets"] = sorted(buckets.values(), key=bound)
    return merged


def render_waterfall(trace: str, events: "list[dict]", *,
                     width: int = 72) -> str:
    """Render one journey as a text waterfall (``repro trace show``).

    One row per event, offset bars proportional to platform time since
    arrival; scheduled rows extend to the execution ``end`` when known.
    """
    if not events:
        return f"trace {trace}: (no events)"
    ident = events[0]
    t0 = float(ident.get("arrival", events[0].get("t", 0.0)))
    span_end = max(
        [float(e.get("t", t0)) for e in events]
        + [float(e["end"]) for e in events if e.get("end") is not None]
    )
    span = max(span_end - t0, 1e-9)
    bar_w = max(10, width - 46)
    lines = [
        f"trace {trace}  task {ident.get('task_id')}  "
        f"arrival {t0:.4g}h  span {span:.4g}h"
    ]
    for ev in events:
        t = float(ev.get("t", t0))
        off = int(round(bar_w * (t - t0) / span))
        off = min(max(off, 0), bar_w)
        if ev.get("state") == "scheduled" and ev.get("end") is not None:
            off = min(off, bar_w - 1)  # an execution bar is never empty
            stop = int(round(bar_w * (float(ev["end"]) - t0) / span))
            stop = min(max(stop, off + 1), bar_w)
            bar = " " * off + "#" * (stop - off) + " " * (bar_w - stop)
        else:
            bar = " " * off + "|" + " " * (bar_w - off)
        detail = ", ".join(
            f"{k}={_fmt(v)}" for k, v in ev.items()
            if k not in ("trace", "task_id", "arrival", "state", "t")
        )
        lines.append(f"  {ev.get('state', '?'):<10} {t - t0:>8.4f}h "
                     f"[{bar}] {detail}")
    return "\n".join(lines)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)
