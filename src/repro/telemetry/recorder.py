"""The run-scoped telemetry recorder and the module-level instrument API.

One :class:`Recorder` covers one run (an experiment invocation, a
benchmark fit, a simulation).  It owns

- the span aggregate (total seconds / call count / error count per path),
- the metric registry (counters, gauges, histograms),
- the ordered event log, sunk to JSONL (one file per run under
  ``results/telemetry/``) when the mode is ``"jsonl"``,
- the end-of-run console summary table.

Activation is contextvar-scoped: ``with recorder.activate(): ...`` (or the
:func:`recording` convenience) makes the recorder visible to every
instrumented call site below it on the stack.  When nothing is active, the
shared :data:`NULL` recorder is returned — its instruments are no-ops and
its ``enabled`` flag is ``False``, so every call site pays exactly one
attribute check in the disabled mode (asserted by the <2% overhead gate in
``benchmarks/bench_micro.py``).

JSONL schema (versioned; see DESIGN.md §8 and §14):

- line 1: ``{"schema": 2, "type": "meta", "run": ..., "git_sha": ...,
  "config": ..., "seeds": ..., ...}``
- span close: ``{"type": "span", "seq": n, "path": ..., "dur_s": ...,
  "ok": ...}``
- explicit events: ``{"type": "event", "seq": n, "name": ..., ...}``
- on close, one ``{"type": "metric", "kind": ..., "name": ..., ...}`` line
  per instrument (sorted by kind then name) and a final
  ``{"type": "span_summary", ...}`` line per span path (sorted by path).

Schema 2 (this PR) extends schema 1 with *labeled series*: a metric
line's ``name`` is the full series key (``metric{k="v",...}`` for labeled
series) and labeled states carry a ``labels`` object.  Unlabeled series
serialize byte-identically to schema 1, and schema-1 logs remain loadable
(:func:`repro.telemetry.jsonl.load_run` accepts both).

Events carry a monotonically increasing ``seq`` and metric/summary lines
are emitted in sorted order, so the *content ordering* of a run log is
deterministic and two runs under the same seed are diffable line-by-line
(durations differ, structure does not).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator, TextIO

from repro.telemetry.metrics import quantile
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.spans import NULL_SPAN, Span, _NullSpan

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "MODES",
    "Recorder",
    "NullRecorder",
    "NULL",
    "get_recorder",
    "recording",
    "span",
    "counter_add",
    "gauge_set",
    "observe",
    "event",
    "run_metadata",
]

SCHEMA_VERSION = 3
#: Schemas :func:`repro.telemetry.jsonl.load_run` accepts.  2 is a
#: strict superset of 1 (unlabeled series are identical in both); 3
#: adds per-task ``journey`` / ``journey_exemplars`` event lines
#: (:mod:`repro.telemetry.journey`) — plain events, so schema-2 readers
#: that key off event names parse a journey-free schema-3 log unchanged.
SUPPORTED_SCHEMAS = (1, 2, 3)
MODES = ("off", "summary", "jsonl")
DEFAULT_DIR = Path("results") / "telemetry"


class NullRecorder:
    """Disabled recorder: every instrument is a no-op."""

    enabled = False
    mode = "off"
    events_recorded = 0

    def span(self, name: str) -> _NullSpan:
        return NULL_SPAN

    def counter_add(self, name: str, amount: float = 1.0,
                    labels: dict | None = None) -> None:
        pass

    def gauge_set(self, name: str, value: float,
                  labels: dict | None = None) -> None:
        pass

    def observe(self, name: str, value: float, n: int = 1,
                bounds: tuple[float, ...] | None = None,
                labels: dict | None = None) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def _record_span(self, path: str, dur: float, ok: bool) -> None:
        pass


NULL = NullRecorder()

_CURRENT: ContextVar["Recorder | NullRecorder"] = ContextVar(
    "repro_telemetry_recorder", default=NULL
)


def get_recorder() -> "Recorder | NullRecorder":
    """The active recorder (the shared no-op :data:`NULL` when none is)."""
    return _CURRENT.get()


class Recorder:
    """Run-scoped sink for spans, metrics and events (see module docs)."""

    enabled = True

    def __init__(
        self,
        mode: str = "summary",
        *,
        run: str = "run",
        out_dir: str | Path | None = None,
        meta: dict | None = None,
        stream: TextIO | None = None,
        labels: dict | None = None,
    ) -> None:
        if mode not in ("summary", "jsonl"):
            raise ValueError(f"mode must be 'summary' or 'jsonl', got {mode!r}")
        if any(c in run for c in "/\\"):
            raise ValueError(f"run name must not contain path separators: {run!r}")
        self.mode = mode
        self.run = run
        self.out_dir = Path(out_dir) if out_dir is not None else DEFAULT_DIR
        self.meta = dict(meta or {})
        self.stream = stream
        self.events_recorded = 0
        self.closed = False
        self._seq = 0
        self._spans: dict[str, list] = {}  # path -> [total_s, calls, errors]
        #: metric series, keyed by name{labels}; base labels (e.g. shard
        #: identity) stamp every series this recorder writes.
        self.registry = MetricRegistry(base_labels=labels)
        self._lines: list[dict] = []  # buffered JSONL events (jsonl mode)
        if labels:
            self.meta.setdefault("labels", dict(self.registry.base_labels))

    # ------------------------------------------------------------------ #
    # Instruments.
    # ------------------------------------------------------------------ #

    def span(self, name: str) -> Span:
        return Span(name, self)

    def _record_span(self, path: str, dur: float, ok: bool) -> None:
        with self.registry.lock:
            agg = self._spans.get(path)
            if agg is None:
                agg = self._spans[path] = [0.0, 0, 0]
            agg[0] += dur
            agg[1] += 1
            if not ok:
                agg[2] += 1
        self.events_recorded += 1
        if self.mode == "jsonl":
            self._emit({"type": "span", "path": path, "dur_s": dur, "ok": ok})

    def counter_add(self, name: str, amount: float = 1.0,
                    labels: dict | None = None) -> None:
        self.registry.counter_add(name, amount, labels)
        self.events_recorded += 1

    def gauge_set(self, name: str, value: float,
                  labels: dict | None = None) -> None:
        self.registry.gauge_set(name, value, labels)
        self.events_recorded += 1

    def observe(self, name: str, value: float, n: int = 1,
                bounds: tuple[float, ...] | None = None,
                labels: dict | None = None) -> None:
        """Record into the named histogram series (created on first use
        with the given ``bounds``; later calls keep the original
        boundaries)."""
        self.registry.observe(name, value, n, bounds, labels)
        self.events_recorded += 1

    def event(self, name: str, **fields: Any) -> None:
        """Emit a discrete run event (warnings, fallbacks, milestones)."""
        self.events_recorded += 1
        if self.mode == "jsonl":
            self._emit({"type": "event", "name": name, **fields})

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #

    @contextmanager
    def activate(self) -> Iterator["Recorder"]:
        """Make this the recorder seen by all instrumented code below."""
        token = _CURRENT.set(self)
        try:
            yield self
        finally:
            _CURRENT.reset(token)

    def _emit(self, payload: dict) -> None:
        payload["seq"] = self._seq
        self._seq += 1
        self._lines.append(payload)

    def aggregate(self) -> dict:
        """Canonical aggregate view: the exact data the console summary
        renders, and what :func:`repro.telemetry.jsonl.aggregate_events`
        reconstructs from a JSONL run log.

        Taken under the registry lock, so a live scrape thread
        (:class:`repro.monitor.live.MetricsServer`) always sees a
        consistent snapshot while the run records.
        """
        with self.registry.lock:
            spans = {
                path: {"total_s": agg[0], "calls": agg[1], "errors": agg[2]}
                for path, agg in sorted(self._spans.items())
            }
            metrics = self.registry.snapshot()
        return {"spans": spans, **metrics}

    def summary_table(self) -> str:
        """End-of-run console summary of spans and metrics."""
        from repro.utils.tables import Table

        out: list[str] = []
        agg = self.aggregate()
        if agg["spans"]:
            t = Table(["span", "total(s)", "calls", "mean(ms)", "errors"],
                      title=f"telemetry spans — run '{self.run}'")
            for path, s in agg["spans"].items():
                t.add_row([path, f"{s['total_s']:.4f}", str(s["calls"]),
                           f"{1e3 * s['total_s'] / s['calls']:.3f}", str(s["errors"])])
            out.append(t.render())
        if agg["counters"] or agg["gauges"]:
            t = Table(["instrument", "kind", "value"], title="counters / gauges")
            for name, c in agg["counters"].items():
                t.add_row([name, "counter", f"{c['value']:g}"])
            for name, g in agg["gauges"].items():
                t.add_row([name, "gauge", f"{g['value']:g}"])
            out.append(t.render())
        if agg["histograms"]:
            t = Table(["histogram", "count", "mean", "min", "max", "p50~", "p95~"],
                      title="histograms")
            for name, h in agg["histograms"].items():
                if not h["count"]:
                    continue
                t.add_row([
                    name, str(h["count"]), f"{h['sum'] / h['count']:.3g}",
                    f"{h['min']:.3g}", f"{h['max']:.3g}",
                    f"{quantile(h, 0.5):.3g}", f"{quantile(h, 0.95):.3g}",
                ])
            out.append(t.render())
        return "\n\n".join(out) if out else "(no telemetry recorded)"

    @property
    def jsonl_path(self) -> Path:
        return self.out_dir / f"{self.run}.jsonl"

    def close(self) -> "Path | None":
        """Flush: write the JSONL file (jsonl mode) and print the summary.

        Returns the path of the written run log, or ``None`` in summary
        mode.  Idempotent.
        """
        if self.closed:
            return self.jsonl_path if self.mode == "jsonl" else None
        self.closed = True
        path: Path | None = None
        if self.mode == "jsonl":
            snap = self.registry.snapshot()
            for kind, section in (("counter", "counters"), ("gauge", "gauges"),
                                  ("histogram", "histograms")):
                for name, state in snap[section].items():
                    self._emit({"type": "metric", "kind": kind, "name": name,
                                **state})
            for p in sorted(self._spans):
                agg = self._spans[p]
                self._emit({"type": "span_summary", "path": p, "total_s": agg[0],
                            "calls": agg[1], "errors": agg[2]})
            head = {"schema": SCHEMA_VERSION, "type": "meta", "run": self.run,
                    **self.meta}
            self.out_dir.mkdir(parents=True, exist_ok=True)
            path = self.jsonl_path
            with open(path, "w") as fh:
                fh.write(json.dumps(head, sort_keys=True) + "\n")
                for line in self._lines:
                    fh.write(json.dumps(line, sort_keys=True) + "\n")
        stream = self.stream or sys.stdout
        print(f"\n== telemetry summary ({self.mode}) ==", file=stream)
        print(self.summary_table(), file=stream)
        if path is not None:
            print(f"telemetry run log: {path}", file=stream)
        return path


# --------------------------------------------------------------------- #
# Module-level instrument API (goes through the active recorder; one
# branch per call when disabled).
# --------------------------------------------------------------------- #


def span(name: str) -> "Span | _NullSpan":
    """Open a span under the active recorder (no-op when disabled)."""
    return _CURRENT.get().span(name)


def counter_add(name: str, amount: float = 1.0,
                labels: dict | None = None) -> None:
    rec = _CURRENT.get()
    if rec.enabled:
        rec.counter_add(name, amount, labels)


def gauge_set(name: str, value: float, labels: dict | None = None) -> None:
    rec = _CURRENT.get()
    if rec.enabled:
        rec.gauge_set(name, value, labels)


def observe(name: str, value: float, n: int = 1,
            bounds: tuple[float, ...] | None = None,
            labels: dict | None = None) -> None:
    rec = _CURRENT.get()
    if rec.enabled:
        rec.observe(name, value, n, bounds, labels)


def event(name: str, **fields: Any) -> None:
    rec = _CURRENT.get()
    if rec.enabled:
        rec.event(name, **fields)


@contextmanager
def recording(
    mode: str = "summary",
    *,
    run: str = "run",
    out_dir: str | Path | None = None,
    meta: dict | None = None,
    stream: TextIO | None = None,
    labels: dict | None = None,
) -> Iterator["Recorder | NullRecorder"]:
    """Activate a fresh recorder for the body and close it on exit.

    ``mode="off"`` yields the shared :data:`NULL` recorder and records
    nothing (and touches no contextvar state).  ``labels`` become the
    recorder's base labels, stamped on every labeled series it records
    (the per-shard identity in a sharded deployment).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if mode == "off":
        yield NULL
        return
    rec = Recorder(mode, run=run, out_dir=out_dir, meta=meta, stream=stream,
                   labels=labels)
    with rec.activate():
        try:
            yield rec
        finally:
            rec.close()


# --------------------------------------------------------------------- #
# Run metadata.
# --------------------------------------------------------------------- #


def run_metadata(config: Any = None, seeds: Any = None, **extra: Any) -> dict:
    """Standard run-header fields: git SHA, config repr, seeds, argv.

    ``config`` is stored as ``repr`` (experiment configs are dataclasses
    with informative, deterministic reprs); ``seeds`` as a list.
    """
    meta: dict[str, Any] = {
        "git_sha": _git_sha(),
        "argv": list(sys.argv),
        "python": sys.version.split()[0],
    }
    if config is not None:
        meta["config"] = repr(config)
    if seeds is not None:
        meta["seeds"] = [int(s) for s in seeds]
    meta.update(extra)
    return meta


def _git_sha() -> str:
    sha = os.environ.get("REPRO_GIT_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"
