"""The run-scoped telemetry recorder and the module-level instrument API.

One :class:`Recorder` covers one run (an experiment invocation, a
benchmark fit, a simulation).  It owns

- the span aggregate (total seconds / call count / error count per path),
- the metric registry (counters, gauges, histograms),
- the ordered event log, sunk to JSONL (one file per run under
  ``results/telemetry/``) when the mode is ``"jsonl"``,
- the end-of-run console summary table.

Activation is contextvar-scoped: ``with recorder.activate(): ...`` (or the
:func:`recording` convenience) makes the recorder visible to every
instrumented call site below it on the stack.  When nothing is active, the
shared :data:`NULL` recorder is returned — its instruments are no-ops and
its ``enabled`` flag is ``False``, so every call site pays exactly one
attribute check in the disabled mode (asserted by the <2% overhead gate in
``benchmarks/bench_micro.py``).

JSONL schema (versioned; see DESIGN.md §8):

- line 1: ``{"schema": 1, "type": "meta", "run": ..., "git_sha": ...,
  "config": ..., "seeds": ..., ...}``
- span close: ``{"type": "span", "seq": n, "path": ..., "dur_s": ...,
  "ok": ...}``
- explicit events: ``{"type": "event", "seq": n, "name": ..., ...}``
- on close, one ``{"type": "metric", "kind": ..., "name": ..., ...}`` line
  per instrument (sorted by kind then name) and a final
  ``{"type": "span_summary", ...}`` line per span path (sorted by path).

Events carry a monotonically increasing ``seq`` and metric/summary lines
are emitted in sorted order, so the *content ordering* of a run log is
deterministic and two runs under the same seed are diffable line-by-line
(durations differ, structure does not).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator, TextIO

from repro.telemetry.metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, quantile
from repro.telemetry.spans import NULL_SPAN, Span, _NullSpan

__all__ = [
    "SCHEMA_VERSION",
    "MODES",
    "Recorder",
    "NullRecorder",
    "NULL",
    "get_recorder",
    "recording",
    "span",
    "counter_add",
    "gauge_set",
    "observe",
    "event",
    "run_metadata",
]

SCHEMA_VERSION = 1
MODES = ("off", "summary", "jsonl")
DEFAULT_DIR = Path("results") / "telemetry"


class NullRecorder:
    """Disabled recorder: every instrument is a no-op."""

    enabled = False
    mode = "off"
    events_recorded = 0

    def span(self, name: str) -> _NullSpan:
        return NULL_SPAN

    def counter_add(self, name: str, amount: float = 1.0) -> None:
        pass

    def gauge_set(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float, n: int = 1,
                bounds: tuple[float, ...] | None = None) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def _record_span(self, path: str, dur: float, ok: bool) -> None:
        pass


NULL = NullRecorder()

_CURRENT: ContextVar["Recorder | NullRecorder"] = ContextVar(
    "repro_telemetry_recorder", default=NULL
)


def get_recorder() -> "Recorder | NullRecorder":
    """The active recorder (the shared no-op :data:`NULL` when none is)."""
    return _CURRENT.get()


class Recorder:
    """Run-scoped sink for spans, metrics and events (see module docs)."""

    enabled = True

    def __init__(
        self,
        mode: str = "summary",
        *,
        run: str = "run",
        out_dir: str | Path | None = None,
        meta: dict | None = None,
        stream: TextIO | None = None,
    ) -> None:
        if mode not in ("summary", "jsonl"):
            raise ValueError(f"mode must be 'summary' or 'jsonl', got {mode!r}")
        if any(c in run for c in "/\\"):
            raise ValueError(f"run name must not contain path separators: {run!r}")
        self.mode = mode
        self.run = run
        self.out_dir = Path(out_dir) if out_dir is not None else DEFAULT_DIR
        self.meta = dict(meta or {})
        self.stream = stream
        self.events_recorded = 0
        self.closed = False
        self._seq = 0
        self._spans: dict[str, list] = {}  # path -> [total_s, calls, errors]
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._hists: dict[str, Histogram] = {}
        self._lines: list[dict] = []  # buffered JSONL events (jsonl mode)

    # ------------------------------------------------------------------ #
    # Instruments.
    # ------------------------------------------------------------------ #

    def span(self, name: str) -> Span:
        return Span(name, self)

    def _record_span(self, path: str, dur: float, ok: bool) -> None:
        agg = self._spans.get(path)
        if agg is None:
            agg = self._spans[path] = [0.0, 0, 0]
        agg[0] += dur
        agg[1] += 1
        if not ok:
            agg[2] += 1
        self.events_recorded += 1
        if self.mode == "jsonl":
            self._emit({"type": "span", "path": path, "dur_s": dur, "ok": ok})

    def counter_add(self, name: str, amount: float = 1.0) -> None:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        c.add(amount)
        self.events_recorded += 1

    def gauge_set(self, name: str, value: float) -> None:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        g.set(value)
        self.events_recorded += 1

    def observe(self, name: str, value: float, n: int = 1,
                bounds: tuple[float, ...] | None = None) -> None:
        """Record into the named histogram (created on first use with the
        given ``bounds``; later calls keep the original boundaries)."""
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = Histogram(name, bounds or DEFAULT_BUCKETS)
        h.observe(value, n)
        self.events_recorded += 1

    def event(self, name: str, **fields: Any) -> None:
        """Emit a discrete run event (warnings, fallbacks, milestones)."""
        self.events_recorded += 1
        if self.mode == "jsonl":
            self._emit({"type": "event", "name": name, **fields})

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #

    @contextmanager
    def activate(self) -> Iterator["Recorder"]:
        """Make this the recorder seen by all instrumented code below."""
        token = _CURRENT.set(self)
        try:
            yield self
        finally:
            _CURRENT.reset(token)

    def _emit(self, payload: dict) -> None:
        payload["seq"] = self._seq
        self._seq += 1
        self._lines.append(payload)

    def aggregate(self) -> dict:
        """Canonical aggregate view: the exact data the console summary
        renders, and what :func:`repro.telemetry.jsonl.aggregate_events`
        reconstructs from a JSONL run log."""
        return {
            "spans": {
                path: {"total_s": agg[0], "calls": agg[1], "errors": agg[2]}
                for path, agg in sorted(self._spans.items())
            },
            "counters": {n: c.state() for n, c in sorted(self._counters.items())},
            "gauges": {n: g.state() for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.state() for n, h in sorted(self._hists.items())},
        }

    def summary_table(self) -> str:
        """End-of-run console summary of spans and metrics."""
        from repro.utils.tables import Table

        out: list[str] = []
        agg = self.aggregate()
        if agg["spans"]:
            t = Table(["span", "total(s)", "calls", "mean(ms)", "errors"],
                      title=f"telemetry spans — run '{self.run}'")
            for path, s in agg["spans"].items():
                t.add_row([path, f"{s['total_s']:.4f}", str(s["calls"]),
                           f"{1e3 * s['total_s'] / s['calls']:.3f}", str(s["errors"])])
            out.append(t.render())
        if agg["counters"] or agg["gauges"]:
            t = Table(["instrument", "kind", "value"], title="counters / gauges")
            for name, c in agg["counters"].items():
                t.add_row([name, "counter", f"{c['value']:g}"])
            for name, g in agg["gauges"].items():
                t.add_row([name, "gauge", f"{g['value']:g}"])
            out.append(t.render())
        if agg["histograms"]:
            t = Table(["histogram", "count", "mean", "min", "max", "p50~", "p95~"],
                      title="histograms")
            for name, h in agg["histograms"].items():
                if not h["count"]:
                    continue
                t.add_row([
                    name, str(h["count"]), f"{h['sum'] / h['count']:.3g}",
                    f"{h['min']:.3g}", f"{h['max']:.3g}",
                    f"{quantile(h, 0.5):.3g}", f"{quantile(h, 0.95):.3g}",
                ])
            out.append(t.render())
        return "\n\n".join(out) if out else "(no telemetry recorded)"

    @property
    def jsonl_path(self) -> Path:
        return self.out_dir / f"{self.run}.jsonl"

    def close(self) -> "Path | None":
        """Flush: write the JSONL file (jsonl mode) and print the summary.

        Returns the path of the written run log, or ``None`` in summary
        mode.  Idempotent.
        """
        if self.closed:
            return self.jsonl_path if self.mode == "jsonl" else None
        self.closed = True
        path: Path | None = None
        if self.mode == "jsonl":
            for kind, reg in (("counter", self._counters), ("gauge", self._gauges),
                              ("histogram", self._hists)):
                for name in sorted(reg):
                    self._emit({"type": "metric", "kind": kind, "name": name,
                                **reg[name].state()})
            for p in sorted(self._spans):
                agg = self._spans[p]
                self._emit({"type": "span_summary", "path": p, "total_s": agg[0],
                            "calls": agg[1], "errors": agg[2]})
            head = {"schema": SCHEMA_VERSION, "type": "meta", "run": self.run,
                    **self.meta}
            self.out_dir.mkdir(parents=True, exist_ok=True)
            path = self.jsonl_path
            with open(path, "w") as fh:
                fh.write(json.dumps(head, sort_keys=True) + "\n")
                for line in self._lines:
                    fh.write(json.dumps(line, sort_keys=True) + "\n")
        stream = self.stream or sys.stdout
        print(f"\n== telemetry summary ({self.mode}) ==", file=stream)
        print(self.summary_table(), file=stream)
        if path is not None:
            print(f"telemetry run log: {path}", file=stream)
        return path


# --------------------------------------------------------------------- #
# Module-level instrument API (goes through the active recorder; one
# branch per call when disabled).
# --------------------------------------------------------------------- #


def span(name: str) -> "Span | _NullSpan":
    """Open a span under the active recorder (no-op when disabled)."""
    return _CURRENT.get().span(name)


def counter_add(name: str, amount: float = 1.0) -> None:
    rec = _CURRENT.get()
    if rec.enabled:
        rec.counter_add(name, amount)


def gauge_set(name: str, value: float) -> None:
    rec = _CURRENT.get()
    if rec.enabled:
        rec.gauge_set(name, value)


def observe(name: str, value: float, n: int = 1,
            bounds: tuple[float, ...] | None = None) -> None:
    rec = _CURRENT.get()
    if rec.enabled:
        rec.observe(name, value, n, bounds)


def event(name: str, **fields: Any) -> None:
    rec = _CURRENT.get()
    if rec.enabled:
        rec.event(name, **fields)


@contextmanager
def recording(
    mode: str = "summary",
    *,
    run: str = "run",
    out_dir: str | Path | None = None,
    meta: dict | None = None,
    stream: TextIO | None = None,
) -> Iterator["Recorder | NullRecorder"]:
    """Activate a fresh recorder for the body and close it on exit.

    ``mode="off"`` yields the shared :data:`NULL` recorder and records
    nothing (and touches no contextvar state).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if mode == "off":
        yield NULL
        return
    rec = Recorder(mode, run=run, out_dir=out_dir, meta=meta, stream=stream)
    with rec.activate():
        try:
            yield rec
        finally:
            rec.close()


# --------------------------------------------------------------------- #
# Run metadata.
# --------------------------------------------------------------------- #


def run_metadata(config: Any = None, seeds: Any = None, **extra: Any) -> dict:
    """Standard run-header fields: git SHA, config repr, seeds, argv.

    ``config`` is stored as ``repr`` (experiment configs are dataclasses
    with informative, deterministic reprs); ``seeds`` as a list.
    """
    meta: dict[str, Any] = {
        "git_sha": _git_sha(),
        "argv": list(sys.argv),
        "python": sys.version.split()[0],
    }
    if config is not None:
        meta["config"] = repr(config)
    if seeds is not None:
        meta["seeds"] = [int(s) for s in seeds]
    meta.update(extra)
    return meta


def _git_sha() -> str:
    sha = os.environ.get("REPRO_GIT_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"
