"""Hierarchical tracing spans (contextvar-nested wall-clock sections).

A span is a named, timed section of the program.  Spans nest through a
context variable: entering ``span("solve")`` inside ``span("train/epoch")``
produces the path ``train/epoch/solve``, without any explicit threading of
parent handles through call signatures — library code deep in the solver
can open a span and it lands under whatever the caller opened.

Spans are exception-safe: the path contextvar is restored and the span is
recorded (flagged ``ok=False``) even when the body raises, and the
exception propagates unchanged.

When no recorder is active the module-level :func:`repro.telemetry.span`
returns the shared :data:`NULL_SPAN`, whose enter/exit do nothing — no
``perf_counter`` calls, no contextvar writes, no allocation.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.recorder import Recorder

__all__ = ["Span", "NULL_SPAN", "current_path"]

#: Path of the innermost open span ("" at top level).
_PATH: ContextVar[str] = ContextVar("repro_telemetry_path", default="")


def current_path() -> str:
    """Path of the innermost open span, or ``""`` outside any span."""
    return _PATH.get()


class Span:
    """One live span; use as a context manager.

    After exit, ``elapsed`` holds the wall-clock seconds and ``ok`` whether
    the body completed without raising.
    """

    __slots__ = ("name", "path", "elapsed", "ok", "_recorder", "_token", "_t0")

    def __init__(self, name: str, recorder: "Recorder") -> None:
        if not name or name.startswith("/") or name.endswith("/"):
            raise ValueError(f"invalid span name {name!r}")
        self.name = name
        self.path = name
        self.elapsed = 0.0
        self.ok = True
        self._recorder = recorder

    def __enter__(self) -> "Span":
        parent = _PATH.get()
        self.path = f"{parent}/{self.name}" if parent else self.name
        self._token = _PATH.set(self.path)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = time.perf_counter() - self._t0
        self.ok = exc_type is None
        _PATH.reset(self._token)
        self._recorder._record_span(self.path, self.elapsed, self.ok)
        return False  # never swallow exceptions


class _NullSpan:
    """Shared no-op span handle returned when telemetry is off."""

    __slots__ = ()

    name = ""
    path = ""
    elapsed = 0.0
    ok = True

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()
