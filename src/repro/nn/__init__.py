"""From-scratch NumPy autograd + neural-network substrate.

The MFCP paper's predictors are small fully-connected networks trained by
backpropagating a matching-regret loss (Eq. 7).  This package provides the
complete training stack: reverse-mode autodiff tensors, layers, losses,
optimizers, initializers, and checkpointing — with gradients property-tested
against finite differences in ``tests/test_nn_*``.
"""

from repro.nn import functional, init, ops
from repro.nn.layers import (
    MLP,
    Dropout,
    Identity,
    LeakyReLU,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
)
from repro.nn.losses import bce_loss, huber_loss, mae_loss, mse_loss
from repro.nn.optim import SGD, Adam, CosineLR, Optimizer, StepLR, clip_grad_norm
from repro.nn.serialization import load_module, save_module
from repro.nn.tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack

__all__ = [
    "Tensor",
    "as_tensor",
    "stack",
    "concatenate",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "functional",
    "init",
    "Module",
    "Parameter",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "LeakyReLU",
    "Identity",
    "Dropout",
    "Sequential",
    "MLP",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "bce_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "clip_grad_norm",
    "save_module",
    "load_module",
]
