"""Loss functions for predictor training.

The two-stage baseline (TSM) minimizes MSE per Eq. (1) of the paper;
the reliability head uses BCE as a better-calibrated alternative that we
expose alongside.  MFCP replaces these with the matching-regret loss built
in :mod:`repro.methods.mfcp`, which composes tensors directly — these
helpers remain useful there for warm-start pretraining.
"""

from __future__ import annotations

import numpy as np

from repro.nn import ops
from repro.nn.tensor import Tensor, as_tensor

__all__ = ["mse_loss", "mae_loss", "huber_loss", "bce_loss"]


def mse_loss(pred: Tensor, target: "Tensor | np.ndarray") -> Tensor:
    """Mean squared error, Eq. (1): ``(1/n) ||target − pred||²``."""
    pred = as_tensor(pred)
    target = as_tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: "Tensor | np.ndarray") -> Tensor:
    """Mean absolute error (L1)."""
    pred = as_tensor(pred)
    target = as_tensor(target)
    return ops.abs_(pred - target.detach()).mean()


def huber_loss(pred: Tensor, target: "Tensor | np.ndarray", delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic within ``delta`` of the target, linear outside."""
    if delta <= 0:
        raise ValueError(f"delta must be > 0, got {delta}")
    pred = as_tensor(pred)
    target = as_tensor(target)
    diff = pred - target.detach()
    absdiff = ops.abs_(diff)
    quadratic = diff * diff * 0.5
    linear = absdiff * delta - 0.5 * delta * delta
    small = absdiff.data <= delta
    return ops.where(small, quadratic, linear).mean()


def bce_loss(pred: Tensor, target: "Tensor | np.ndarray", eps: float = 1e-7) -> Tensor:
    """Binary cross-entropy on probabilities in (0, 1).

    Predictions are clipped to ``[eps, 1-eps]`` for numerical safety; the
    clip has zero gradient only at saturated predictions, which is the
    desired behaviour.
    """
    pred = as_tensor(pred)
    target = as_tensor(target).detach()
    p = ops.clip(pred, eps, 1.0 - eps)
    t = target.data
    return -(ops.log(p) * t + ops.log(1.0 - p) * (1.0 - t)).mean()
