"""Composite differentiable functions: softmax, log-sum-exp, barriers.

These implement the exact mathematical building blocks of the paper:

- :func:`logsumexp` / :func:`smooth_max` — the Eq. (8) smoothing
  ``f̃(X,T) = (1/β) log Σ_i exp(β x_iᵀ t_i)``;
- :func:`softmax` — the per-task projection used by Algorithm 1;
- :func:`log_barrier` — the Eq. (9) interior-point term
  ``-λ log(g(X,A))``.

All use the standard max-shift trick for numerical stability and are
differentiable end-to-end via the Tensor tape.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor
from repro.nn import ops

__all__ = [
    "softmax",
    "log_softmax",
    "logsumexp",
    "smooth_max",
    "log_barrier",
    "softmax_np",
    "logsumexp_np",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Differentiable softmax along ``axis`` with max-shift stabilization."""
    x = as_tensor(x)
    shifted = x - x.data.max(axis=axis, keepdims=True)  # constant shift: no grad needed
    e = ops.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))``."""
    x = as_tensor(x)
    return x - logsumexp(x, axis=axis, keepdims=True)


def logsumexp(x: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
    """Differentiable ``log Σ exp(x)`` with max-shift stabilization."""
    x = as_tensor(x)
    shift = x.data.max(axis=axis, keepdims=True)
    shifted = x - shift
    s = ops.exp(shifted).sum(axis=axis, keepdims=True)
    out = ops.log(s) + shift
    if not keepdims and axis is not None:
        out = _squeeze(out, axis)
    elif not keepdims and axis is None:
        out = out.reshape()
    return out


def _squeeze(x: Tensor, axis: int) -> Tensor:
    new_shape = list(x.shape)
    del new_shape[axis if axis >= 0 else len(new_shape) + axis]
    return x.reshape(*new_shape)


def smooth_max(values: Tensor, beta: float) -> Tensor:
    """Eq. (8): smooth approximation of ``max_i values_i``.

    ``smooth_max(v, β) = (1/β) log Σ_i exp(β v_i)``.  Satisfies
    ``max(v) <= smooth_max(v, β) <= max(v) + log(M)/β`` (Theorem 1), which
    the test suite checks numerically.
    """
    if beta <= 0:
        raise ValueError(f"beta must be > 0, got {beta}")
    values = as_tensor(values)
    return logsumexp(values * beta) * (1.0 / beta)


def log_barrier(slack: Tensor, lam: float) -> Tensor:
    """Eq. (9) logarithmic barrier ``-λ log(slack)`` for ``slack > 0``.

    The caller guarantees strict feasibility (``slack > 0``); the solver's
    line search enforces it.  A negative or zero slack raises, surfacing
    infeasible iterates loudly instead of returning NaN.
    """
    if lam <= 0:
        raise ValueError(f"lambda must be > 0, got {lam}")
    slack = as_tensor(slack)
    if np.any(slack.data <= 0):
        raise ValueError("log barrier requires strictly positive slack")
    return ops.log(slack) * (-lam)


# --------------------------------------------------------------------- #
# Plain-NumPy twins used on solver hot paths (no tape overhead)
# --------------------------------------------------------------------- #


def softmax_np(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Tape-free softmax used inside Algorithm 1's projection step."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def logsumexp_np(x: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Tape-free log-sum-exp with max-shift stabilization."""
    shift = x.max(axis=axis, keepdims=True)
    out = np.log(np.exp(x - shift).sum(axis=axis, keepdims=True)) + shift
    if axis is not None:
        out = np.squeeze(out, axis=axis)
    else:
        out = out.reshape(())
    return out
