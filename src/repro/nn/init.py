"""Weight initialization schemes for the MLP predictors."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["xavier_uniform", "xavier_normal", "he_uniform", "he_normal", "zeros"]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) != 2:
        raise ValueError(f"initializers expect 2-D weight shapes, got {shape}")
    fan_in, fan_out = shape
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, int], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out))."""
    rng = as_generator(rng)
    fan_in, fan_out = _fans(shape)
    a = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape)


def xavier_normal(shape: tuple[int, int], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    rng = as_generator(rng)
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: tuple[int, int], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """He/Kaiming uniform for ReLU networks: U(-a, a), a = sqrt(6 / fan_in)."""
    rng = as_generator(rng)
    fan_in, _ = _fans(shape)
    a = np.sqrt(6.0 / fan_in)
    return rng.uniform(-a, a, size=shape)


def he_normal(shape: tuple[int, int], rng: np.random.Generator | int | None = None) -> np.ndarray:
    """He/Kaiming normal for ReLU networks: N(0, 2 / fan_in)."""
    rng = as_generator(rng)
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape: tuple[int, ...], rng: object = None) -> np.ndarray:
    """Zero initialization (biases)."""
    return np.zeros(shape)
