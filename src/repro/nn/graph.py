"""Trainable graph neural network layers on the autograd substrate.

The paper embeds tasks with a GNN before the MLP heads (§4.1.1).  The
default pipeline uses the frozen :class:`~repro.workloads.embedding.
GraphEmbedder`; this module provides the *trainable* counterpart for users
who want to fine-tune the embedding end to end — GCN-style convolutions
(Kipf & Welling) running entirely on the :class:`~repro.nn.tensor.Tensor`
tape, so regret or MSE gradients flow back into the graph encoder.

Graphs are presented as ``(norm_adj, node_features)`` pairs;
:func:`graph_inputs` builds them from the operator graphs of
:mod:`repro.workloads.graphs`.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.nn import ops
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, concatenate, no_grad, stack
from repro.utils.rng import as_generator, spawn
from repro.workloads.graphs import build_graph, node_feature_matrix
from repro.workloads.specs import ModelSpec

__all__ = ["GraphConv", "GNNEncoder", "GNNTimePredictor", "graph_inputs"]


def graph_inputs(spec_or_graph: "ModelSpec | nx.DiGraph") -> tuple[np.ndarray, np.ndarray]:
    """(normalized adjacency with self-loops, node feature matrix).

    Uses the symmetric normalization ``D^{-1/2}(A + Aᵀ + I)D^{-1/2}`` over
    the undirected view of the operator DAG — the standard GCN propagation
    operator.
    """
    g = build_graph(spec_or_graph) if isinstance(spec_or_graph, ModelSpec) else spec_or_graph
    feats = node_feature_matrix(g)
    adj = nx.to_numpy_array(g)
    adj = adj + adj.T + np.eye(g.number_of_nodes())
    deg = adj.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1e-12))
    return adj * inv_sqrt[:, None] * inv_sqrt[None, :], feats


class GraphConv(Module):
    """One GCN layer: ``H' = act(Â H W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        activation: str = "relu",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, init="xavier_uniform",
                             rng=as_generator(rng))
        if activation not in ("relu", "tanh", "identity"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.activation = activation

    def forward(self, inputs: tuple[np.ndarray, Tensor]) -> Tensor:  # type: ignore[override]
        norm_adj, h = inputs
        out = Tensor(norm_adj) @ self.linear(h)
        if self.activation == "relu":
            return ops.relu(out)
        if self.activation == "tanh":
            return ops.tanh(out)
        return out


class GNNEncoder(Module):
    """Stack of GraphConv layers with mean⊕max readout and a projection.

    ``encode`` maps one ``(norm_adj, features)`` pair to an embedding
    tensor of width ``out_dim``; ``encode_batch`` stacks a list of graphs.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int] = (32, 32),
        out_dim: int = 16,
        *,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if out_dim <= 0:
            raise ValueError("out_dim must be positive")
        rng = as_generator(rng)
        dims = [in_features, *hidden]
        self._conv_names: list[str] = []
        for i in range(len(dims) - 1):
            name = f"conv{i}"
            setattr(self, name, GraphConv(dims[i], dims[i + 1], rng=spawn(rng)))
            self._conv_names.append(name)
        self.readout = Linear(2 * dims[-1], out_dim, init="xavier_uniform",
                              rng=spawn(rng))
        self.out_dim = out_dim

    def encode(self, norm_adj: np.ndarray, feats: np.ndarray) -> Tensor:
        h = Tensor(np.asarray(feats, dtype=np.float64))
        for name in self._conv_names:
            h = self._modules[name]((norm_adj, h))
        pooled = concatenate([h.mean(axis=0), h.max(axis=0)])
        return ops.tanh(self.readout(pooled.reshape(1, -1))).reshape(-1)

    def encode_batch(self, graphs: Sequence[tuple[np.ndarray, np.ndarray]]) -> Tensor:
        """Stack embeddings for a list of graphs: shape (B, out_dim)."""
        if not graphs:
            raise ValueError("graphs must be non-empty")
        return stack([self.encode(a, f) for a, f in graphs])

    def forward(self, inputs: tuple[np.ndarray, np.ndarray]) -> Tensor:  # type: ignore[override]
        return self.encode(*inputs)


class GNNTimePredictor(Module):
    """End-to-end trainable: operator graph → GNN → MLP head → exp(log t̂).

    The trainable analogue of ``GraphEmbedder + TimePredictor``; gradients
    from any loss (MSE or a matching-regret VJP) reach the graph encoder.
    """

    _LOG_CLIP = 8.0

    def __init__(
        self,
        in_features: int,
        gnn_hidden: Sequence[int] = (32, 32),
        embed_dim: int = 16,
        head_hidden: Sequence[int] = (32,),
        *,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        rng = as_generator(rng)
        self.encoder = GNNEncoder(in_features, gnn_hidden, embed_dim, rng=spawn(rng))
        from repro.nn.layers import MLP

        self.head = MLP(embed_dim, head_hidden, 1, output="identity", rng=spawn(rng))

    def forward(self, graphs: Sequence[tuple[np.ndarray, np.ndarray]]) -> Tensor:  # type: ignore[override]
        z = self.encoder.encode_batch(graphs)
        log_t = ops.clip(self.head(z), -self._LOG_CLIP, self._LOG_CLIP)
        return ops.exp(log_t).reshape(-1)

    def predict(self, graphs: Sequence[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        with no_grad():
            return self.forward(graphs).data.copy()

    @staticmethod
    def prepare(specs: Sequence[ModelSpec]) -> list[tuple[np.ndarray, np.ndarray]]:
        """Convenience: build graph inputs for a list of specs."""
        return [graph_inputs(s) for s in specs]
