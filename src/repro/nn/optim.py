"""First-order optimizers and learning-rate schedules.

All optimizers operate on :class:`~repro.nn.layers.Parameter` leaves and
mutate their raw ``.data`` buffers between graph constructions — each
training step builds a fresh tape, so in-place parameter updates are safe.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.layers import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "clip_grad_norm",
]


class Optimizer:
    """Base optimizer: holds the parameter list and a mutable learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be > 0, got {lr}")
        self.lr = float(lr)
        self.steps = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be >= 0, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray] = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.steps += 1
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                update = g + self.momentum * v if self.nesterov else v
            else:
                update = g
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (float(b1), float(b2))
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.steps += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1**self.steps
        bc2 = 1.0 - b2**self.steps
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * (g * g)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class StepLR:
    """Multiply the optimizer's lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be > 0, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self._base_lr * self.gamma ** (self._epoch // self.step_size)


class CosineLR:
    """Cosine annealing from the initial lr down to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        if t_max <= 0:
            raise ValueError(f"t_max must be > 0, got {t_max}")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.t_max)
        cos = 0.5 * (1.0 + np.cos(np.pi * self._epoch / self.t_max))
        self.optimizer.lr = self.eta_min + (self._base_lr - self.eta_min) * cos


def clip_grad_norm(params: "Sequence[Parameter] | Iterable[Parameter]", max_norm: float) -> float:
    """Rescale gradients so the global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm; used by the MFCP training loop to tame the
    occasional large zeroth-order estimate.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be > 0, got {max_norm}")
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float(np.sum(p.grad**2)) for p in params)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total
