"""Elementwise differentiable operations on :class:`~repro.nn.tensor.Tensor`.

Each function builds the forward value with vectorized NumPy and registers a
backward closure computing the vector-Jacobian product.  These are the
primitives the MLP layers and the smoothed matching objectives compose.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, as_tensor

__all__ = [
    "exp",
    "log",
    "sqrt",
    "abs_",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "softplus",
    "clip",
    "maximum",
    "minimum",
    "where",
]


def exp(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.exp(x.data)

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        return (g * out_data,)

    return Tensor._from_op(out_data, (x,), backward)


def log(x: Tensor) -> Tensor:
    x = as_tensor(x)
    x_data = x.data

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        return (g / x_data,)

    return Tensor._from_op(np.log(x_data), (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.sqrt(x.data)

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        return (g * 0.5 / out_data,)

    return Tensor._from_op(out_data, (x,), backward)


def abs_(x: Tensor) -> Tensor:
    """Absolute value; subgradient 0 at the kink."""
    x = as_tensor(x)
    x_data = x.data

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        return (g * np.sign(x_data),)

    return Tensor._from_op(np.abs(x_data), (x,), backward)


def tanh(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out_data = np.tanh(x.data)

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        return (g * (1.0 - out_data * out_data),)

    return Tensor._from_op(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    x = as_tensor(x)
    z = x.data
    out_data = np.empty_like(z)
    pos = z >= 0
    out_data[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out_data[~pos] = ez / (1.0 + ez)

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        return (g * out_data * (1.0 - out_data),)

    return Tensor._from_op(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    x = as_tensor(x)
    x_data = x.data
    mask = (x_data > 0).astype(np.float64)

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        return (g * mask,)

    return Tensor._from_op(x_data * mask, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    x = as_tensor(x)
    x_data = x.data
    slope = np.where(x_data > 0, 1.0, negative_slope)

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        return (g * slope,)

    return Tensor._from_op(x_data * slope, (x,), backward)


def softplus(x: Tensor, beta: float = 1.0) -> Tensor:
    """``log(1 + exp(beta*x)) / beta`` — smooth positive output head.

    Used by the execution-time predictor so predicted times stay strictly
    positive.  Stable form avoids overflow for large ``beta*x``.
    """
    x = as_tensor(x)
    z = beta * x.data
    out_data = (np.logaddexp(0.0, z)) / beta
    sig = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        return (g * sig,)

    return Tensor._from_op(out_data, (x,), backward)


def clip(x: Tensor, lo: float, hi: float) -> Tensor:
    """Clamp with zero gradient outside [lo, hi]."""
    x = as_tensor(x)
    x_data = x.data
    mask = ((x_data >= lo) & (x_data <= hi)).astype(np.float64)

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        return (g * mask,)

    return Tensor._from_op(np.clip(x_data, lo, hi), (x,), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max; gradient splits equally on exact ties."""
    a, b = as_tensor(a), as_tensor(b)
    a_data, b_data = a.data, b.data
    out_data = np.maximum(a_data, b_data)
    tie = (a_data == b_data).astype(np.float64)
    wa = (a_data > b_data).astype(np.float64) + 0.5 * tie
    wb = (b_data > a_data).astype(np.float64) + 0.5 * tie

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        from repro.nn.tensor import unbroadcast

        return unbroadcast(g * wa, a.shape), unbroadcast(g * wb, b.shape)

    return Tensor._from_op(out_data, (a, b), backward)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise min (mirror of :func:`maximum`)."""
    return -maximum(-as_tensor(a), -as_tensor(b))


def where(cond: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select ``a`` where ``cond`` else ``b``; ``cond`` is a constant mask."""
    a, b = as_tensor(a), as_tensor(b)
    mask = np.asarray(cond, dtype=bool)

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        from repro.nn.tensor import unbroadcast

        return (
            unbroadcast(np.where(mask, g, 0.0), a.shape),
            unbroadcast(np.where(mask, 0.0, g), b.shape),
        )

    return Tensor._from_op(np.where(mask, a.data, b.data), (a, b), backward)
