"""Neural-network modules: parameters, layers, and the MLP used by MFCP.

The paper's predictors are cluster-specific fully-connected networks mapping
a task feature vector ``z`` to a scalar execution time or reliability
(§4.1.1: "we only utilized fully connected layers for training").  This
module provides a small but complete ``Module`` hierarchy on top of the
autograd :class:`~repro.nn.tensor.Tensor`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro.nn import init as initializers
from repro.nn import ops
from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator, spawn

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softplus",
    "LeakyReLU",
    "Identity",
    "Dropout",
    "Sequential",
    "MLP",
]


class Parameter(Tensor):
    """A trainable leaf tensor (``requires_grad=True`` by construction)."""

    def __init__(self, data: np.ndarray, *, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class: parameter registration, train/eval mode, state dicts."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, Module] = {}
        self.training: bool = True

    # -- registration (attribute assignment auto-registers) ------------- #

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters, depth-first, deterministic order."""
        for p in self._parameters.values():
            yield p
        for m in self._modules.values():
            yield from m.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- modes ----------------------------------------------------------- #

    def train(self) -> "Module":
        self.training = True
        for m in self._modules.values():
            m.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for m in self._modules.values():
            m.eval()
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state ------------------------------------------------------------ #

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            arr = np.asarray(state[name], dtype=np.float64)
            if arr.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}")
            p.data[...] = arr

    # -- forward ------------------------------------------------------------ #

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


class Linear(Module):
    """Affine layer ``y = x W + b`` with He/Xavier initialization.

    ``x`` may be a single feature vector (1-D) or a batch (2-D, samples in
    rows) — the matmul handles both.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        init: str = "he_uniform",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        rng = as_generator(rng)
        init_fn = getattr(initializers, init, None)
        if init_fn is None:
            raise ValueError(f"unknown initializer {init!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_fn((in_features, out_features), rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class _Activation(Module):
    """Stateless elementwise activation wrapping an op from :mod:`repro.nn.ops`."""

    _fn: Callable[[Tensor], Tensor]

    def forward(self, x: Tensor) -> Tensor:
        return type(self)._fn(x)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ReLU(_Activation):
    _fn = staticmethod(ops.relu)


class Tanh(_Activation):
    _fn = staticmethod(ops.tanh)


class Sigmoid(_Activation):
    _fn = staticmethod(ops.sigmoid)


class Softplus(_Activation):
    _fn = staticmethod(ops.softplus)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return ops.leaky_relu(x, self.negative_slope)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    A per-module generator keeps masks reproducible given the construction
    seed, independent of global state.
    """

    def __init__(self, p: float = 0.5, *, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_generator(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * mask


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for i, m in enumerate(modules):
            name = f"m{i}"
            setattr(self, name, m)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)


_ACTIVATIONS: dict[str, type[Module]] = {
    "relu": ReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "softplus": Softplus,
    "leaky_relu": LeakyReLU,
    "identity": Identity,
}

_OUTPUT_HEADS: dict[str, type[Module]] = {
    "identity": Identity,
    "softplus": Softplus,  # strictly positive outputs (execution time)
    "sigmoid": Sigmoid,  # outputs in (0, 1) (reliability)
}


class MLP(Module):
    """Fully-connected network ``d → hidden… → out`` with a typed output head.

    Parameters
    ----------
    in_features:
        Input (task feature) dimension.
    hidden:
        Sizes of hidden layers; may be empty for a linear model.
    out_features:
        Output dimension (1 for the paper's scalar predictors).
    activation:
        Hidden activation name (``relu``/``tanh``/...).
    output:
        Output head: ``identity``, ``softplus`` (positive, time predictor)
        or ``sigmoid`` (unit interval, reliability predictor).
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int] = (32, 32),
        out_features: int = 1,
        *,
        activation: str = "relu",
        output: str = "identity",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}; options: {sorted(_ACTIVATIONS)}")
        if output not in _OUTPUT_HEADS:
            raise ValueError(f"unknown output head {output!r}; options: {sorted(_OUTPUT_HEADS)}")
        rng = as_generator(rng)
        init = "he_uniform" if activation in ("relu", "leaky_relu") else "xavier_uniform"
        dims = [in_features, *hidden, out_features]
        layers: list[Module] = []
        for i in range(len(dims) - 1):
            layers.append(Linear(dims[i], dims[i + 1], init=init, rng=spawn(rng)))
            if i < len(dims) - 2:
                layers.append(_ACTIVATIONS[activation]())
        layers.append(_OUTPUT_HEADS[output]())
        self.net = Sequential(*layers)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Tape-free forward pass on raw arrays (squeezes a size-1 head)."""
        from repro.nn.tensor import no_grad

        with no_grad():
            out = self.forward(Tensor(np.asarray(x, dtype=np.float64))).data
        if self.out_features == 1 and out.ndim >= 1 and out.shape[-1] == 1:
            out = out[..., 0]
        return out
