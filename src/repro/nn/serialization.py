"""Saving and loading predictor parameters.

Uses ``numpy.savez`` so checkpoints are portable, dependency-free, and
human-inspectable (``np.load`` shows the dotted parameter names).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.nn.layers import Module

__all__ = ["save_module", "load_module"]


def save_module(module: "Module", path: str | os.PathLike[str]) -> None:
    """Write ``module``'s state dict to ``path`` (``.npz`` appended if absent)."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez(os.fspath(path), **state)


def load_module(module: "Module", path: str | os.PathLike[str]) -> "Module":
    """Load a state dict saved by :func:`save_module` into ``module`` in place.

    The module must already have the right architecture; shape mismatches
    raise rather than silently truncating.
    """
    path_str = os.fspath(path)
    if not path_str.endswith(".npz"):
        path_str += ".npz"
    with np.load(path_str) as data:
        state = {name: data[name] for name in data.files}
    module.load_state_dict(state)
    return module
