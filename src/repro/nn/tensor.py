"""Reverse-mode automatic differentiation on NumPy arrays.

This is the neural-network substrate for the MFCP reproduction: the paper's
predictors are small fully-connected networks, and MFCP backpropagates a
matching-regret loss through them (Eq. 7 of the paper).  The engine is a
classic define-by-run tape:

- a :class:`Tensor` wraps a ``numpy.ndarray`` plus an optional gradient;
- every differentiable operation records its inputs and a backward closure
  that maps the output gradient to input-gradient contributions;
- :meth:`Tensor.backward` topologically sorts the tape and accumulates.

Design notes (kept deliberately close to what the paper needs, no more):

- Gradients are dense ``float64`` arrays of the same shape as their tensor.
- Broadcasting in forward ops is mirrored by *unbroadcasting* (summation
  over broadcast axes) in backward closures — see :func:`unbroadcast`.
- The tape is garbage-collected naturally: a backward pass does not mutate
  graph structure, and tensors drop their parents when Python frees them.
- No in-place mutation of tensors that require grad; optimizers mutate raw
  ``.data`` buffers between graph constructions, which is safe because each
  training step builds a fresh graph.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "unbroadcast", "as_tensor", "no_grad", "is_grad_enabled"]

ArrayLike = "np.ndarray | float | int | Sequence[float] | Tensor"

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling tape construction (evaluation mode).

    Mirrors the familiar ``torch.no_grad()`` idiom; forward passes inside
    the block produce constant tensors, which keeps inference cheap inside
    the matching solvers.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations are currently recorded on the tape."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes.

    NumPy broadcasting aligns trailing dimensions; any leading dimensions
    that were added, and any axes of size 1 that were stretched, must have
    their gradient contributions summed.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that broadcasting prepended.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array contents; coerced to ``float64``.
    requires_grad:
        Whether gradients should flow into this tensor (leaf nodes — model
        parameters — set this; intermediate tensors inherit it from their
        parents).
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    #: Opt out of NumPy's ufunc dispatch so expressions like
    #: ``ndarray + Tensor`` defer to our reflected operators instead of
    #: producing an object array element-wise.
    __array_ufunc__ = None

    def __init__(
        self,
        data: "np.ndarray | float | int | Sequence[float]",
        requires_grad: bool = False,
        *,
        name: str | None = None,
    ) -> None:
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._parents: tuple[Tensor, ...] = ()
        self._backward: Callable[[np.ndarray], tuple[np.ndarray | None, ...]] | None = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], tuple[np.ndarray | None, ...]],
    ) -> "Tensor":
        """Create a non-leaf tensor recording ``backward`` on the tape."""
        out = cls(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view; do not mutate mid-graph)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a constant tensor sharing this tensor's data."""
        out = Tensor(self.data)
        return out

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Accumulate gradients of ``self`` w.r.t. every reachable leaf.

        ``grad`` seeds the output gradient; for scalar tensors it defaults
        to 1.  Gradients *accumulate* into ``.grad`` (callers reset between
        steps via optimizers' ``zero_grad``).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        seed = np.asarray(grad, dtype=np.float64)
        if seed.shape != self.data.shape:
            seed = np.broadcast_to(seed, self.data.shape).copy()

        order = _topo_sort(self)
        grads: dict[int, np.ndarray] = {id(self): seed}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf: accumulate into .grad.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pg in zip(node._parents, parent_grads):
                if pg is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pg
                else:
                    grads[key] = pg

    # ------------------------------------------------------------------ #
    # Arithmetic (backward closures defined inline; broadcasting-aware)
    # ------------------------------------------------------------------ #

    def _coerce(self, other: "Tensor | np.ndarray | float | int") -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: "Tensor | np.ndarray | float | int") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            return unbroadcast(g, a.shape), unbroadcast(g, b.shape)

        return Tensor._from_op(a.data + b.data, (a, b), backward)

    __radd__ = __add__

    def __sub__(self, other: "Tensor | np.ndarray | float | int") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            return unbroadcast(g, a.shape), unbroadcast(-g, b.shape)

        return Tensor._from_op(a.data - b.data, (a, b), backward)

    def __rsub__(self, other: "Tensor | np.ndarray | float | int") -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: "Tensor | np.ndarray | float | int") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        a_data, b_data = a.data, b.data

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            return unbroadcast(g * b_data, a.shape), unbroadcast(g * a_data, b.shape)

        return Tensor._from_op(a_data * b_data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | np.ndarray | float | int") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        a_data, b_data = a.data, b.data

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            ga = unbroadcast(g / b_data, a.shape)
            gb = unbroadcast(-g * a_data / (b_data * b_data), b.shape)
            return ga, gb

        return Tensor._from_op(a_data / b_data, (a, b), backward)

    def __rtruediv__(self, other: "Tensor | np.ndarray | float | int") -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            return (-g,)

        return Tensor._from_op(-a.data, (a,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports scalar exponents")
        a = self
        p = float(exponent)
        a_data = a.data

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            return (g * p * np.power(a_data, p - 1.0),)

        return Tensor._from_op(np.power(a_data, p), (a,), backward)

    def __matmul__(self, other: "Tensor | np.ndarray") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        a_data, b_data = a.data, b.data
        if a_data.ndim > 2 or b_data.ndim > 2:
            raise ValueError("matmul supports 1-D and 2-D operands only")

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            # Promote to 2-D, compute, then squeeze back — handles the four
            # (vec/mat) × (vec/mat) cases uniformly.
            a2 = a_data.reshape(1, -1) if a_data.ndim == 1 else a_data
            b2 = b_data.reshape(-1, 1) if b_data.ndim == 1 else b_data
            g2 = g.reshape(a2.shape[0], b2.shape[1])
            ga = g2 @ b2.T
            gb = a2.T @ g2
            return ga.reshape(a_data.shape), gb.reshape(b_data.shape)

        return Tensor._from_op(a_data @ b_data, (a, b), backward)

    def __rmatmul__(self, other: "np.ndarray") -> "Tensor":
        return self._coerce(other).__matmul__(self)

    # ------------------------------------------------------------------ #
    # Shape ops
    # ------------------------------------------------------------------ #

    def reshape(self, *shape: int) -> "Tensor":
        a = self
        orig_shape = a.shape

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            return (g.reshape(orig_shape),)

        return Tensor._from_op(a.data.reshape(shape), (a,), backward)

    def ravel(self) -> "Tensor":
        return self.reshape(-1)

    @property
    def T(self) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            return (g.T,)

        return Tensor._from_op(a.data.T, (a,), backward)

    def __getitem__(self, idx: object) -> "Tensor":
        a = self
        a_shape = a.shape

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            out = np.zeros(a_shape)
            np.add.at(out, idx, g)  # type: ignore[arg-type]
            return (out,)

        return Tensor._from_op(a.data[idx], (a,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        a = self
        a_shape = a.shape

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            if axis is None:
                return (np.broadcast_to(g, a_shape).copy(),)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return (np.broadcast_to(g_expanded, a_shape).copy(),)

        return Tensor._from_op(a.data.sum(axis=axis, keepdims=keepdims), (a,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        a = self
        if axis is None:
            count = a.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([a.data.shape[ax] for ax in axis]))
        else:
            count = a.data.shape[axis]
        return a.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Max reduction; ties split gradient equally among argmax entries."""
        a = self
        out_data = a.data.max(axis=axis, keepdims=keepdims)
        a_data = a.data

        def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            if axis is None:
                mask = (a_data == out_data).astype(np.float64)
                mask /= mask.sum()
                return (mask * g,)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = (a_data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return (mask * g_expanded,)

        return Tensor._from_op(out_data, (a,), backward)

    def dot(self, other: "Tensor | np.ndarray") -> "Tensor":
        return self.__matmul__(other)


def _topo_sort(root: Tensor) -> list[Tensor]:
    """Return tensors reachable from ``root`` in reverse topological order.

    Iterative DFS (no recursion limit issues on deep MLP graphs).
    """
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


def as_tensor(x: "Tensor | np.ndarray | float | Sequence[float]") -> Tensor:
    """Coerce ``x`` to a constant :class:`Tensor` (no copy for Tensors)."""
    return x if isinstance(x, Tensor) else Tensor(x)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiable in every input."""
    ts = list(tensors)
    if not ts:
        raise ValueError("stack() requires at least one tensor")
    datas = [t.data for t in ts]

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        pieces = np.split(g, len(ts), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._from_op(np.stack(datas, axis=axis), tuple(ts), backward)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis, differentiable."""
    ts = list(tensors)
    if not ts:
        raise ValueError("concatenate() requires at least one tensor")
    sizes = [t.data.shape[axis] for t in ts]
    splits = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
        return tuple(np.split(g, splits, axis=axis))

    return Tensor._from_op(np.concatenate([t.data for t in ts], axis=axis), tuple(ts), backward)
