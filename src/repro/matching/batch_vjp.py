"""Batched KKT adjoint: Eq. (15) pulled back for a whole batch at once.

:func:`repro.matching.kkt.kkt_vjp` solves one (P+N)×(P+N) saddle system
per instance.  MFCP's fused training round needs the adjoint of *all* M
semi-predicted instances of an epoch; this module stacks the systems into
one ``(B, P+N, P+N)`` array and factorizes them with a single
``np.linalg.solve`` call — one LAPACK dispatch instead of B Python
round-trips.

The downstream contractions ``dT = −C_Tᵀ u`` and ``dA = −C_Aᵀ u`` are
evaluated in closed form instead of materializing the B×P×P cross-
derivative blocks.  With ``w = softmax(βc)``, ``S_i = Σ_j t_ij u_ij``,
``W = Σ_i w_i S_i`` and ``s`` the reliability slack:

    (C_Tᵀ u)_ij = w_i u_ij + β x_ij w_i (S_i − W)
    (C_Aᵀ u)_ij = −λ u_ij / (MNs) + λ x_ij ⟨A, U⟩ / (MNs)²

which follow by contracting the Eq. (15) cross-derivative formulas of
:func:`repro.matching.objectives.barrier_second_derivatives`.  Agreement
with the scalar route is asserted per instance in
``tests/test_batch_training.py``.

Only the sequential (convex) makespan-barrier objective is supported —
the same regime as :class:`repro.matching.batch.BatchProblem`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.batch import BatchProblem, batch_reliability_slack
from repro.matching.kkt import _equality_jacobian, _solve_saddle

__all__ = ["BatchKKTGradients", "batch_kkt_vjp"]


@dataclass(frozen=True)
class BatchKKTGradients:
    """Upstream gradients mapped through every instance's argmin."""

    dT: np.ndarray  # (B, M, N)
    dA: np.ndarray  # (B, M, N)


def batch_kkt_vjp(
    X_star: np.ndarray,
    problem: BatchProblem,
    grad_X: np.ndarray,
    *,
    ridge: float = 1e-8,
) -> BatchKKTGradients:
    """Vector–Jacobian products through B argmins in one stacked solve.

    Parameters
    ----------
    X_star:
        Relaxed optimal matchings, shape (B, M, N).
    problem:
        The batch whose ``T``/``A`` are the prediction matrices.
    grad_X:
        Upstream gradients ``dL/dX*`` per instance, shape (B, M, N).
    ridge:
        Tikhonov regularization on H (same default as the scalar route).
    """
    B, M, N = problem.B, problem.M, problem.N
    P = M * N
    if X_star.shape != (B, M, N) or grad_X.shape != (B, M, N):
        raise ValueError(f"X_star and grad_X must have shape {(B, M, N)}")
    T, A = problem.T, problem.A
    beta, lam = problem.beta, problem.lam

    c = np.einsum("bmn,bmn->bm", X_star, T)
    w = np.exp(beta * (c - c.max(axis=1, keepdims=True)))
    w /= w.sum(axis=1, keepdims=True)  # (B, M)
    slack = batch_reliability_slack(X_star, problem)
    if np.any(slack <= 0):
        raise ValueError("KKT differentiation evaluated at an infeasible point (g <= 0)")
    mn_s = M * N * slack  # (B,)

    t_flat = T.reshape(B, P)
    a_flat = A.reshape(B, P)
    x_flat = X_star.reshape(B, P)
    w_row = np.repeat(w, N, axis=1)  # (B, P)
    cluster_of = np.repeat(np.arange(M), N)
    same_cluster = (cluster_of[:, None] == cluster_of[None, :]).astype(np.float64)

    # H = β(δ_c w − wwᵀ) ∘ ttᵀ + λ aaᵀ/(MNs)² (+ entropy diagonal), batched.
    dw = beta * (
        same_cluster[None] * w_row[:, :, None] - w_row[:, :, None] * w_row[:, None, :]
    )
    H = dw * (t_flat[:, :, None] * t_flat[:, None, :])
    H += (lam / mn_s**2)[:, None, None] * (a_flat[:, :, None] * a_flat[:, None, :])
    diag = np.arange(P)
    if problem.entropy:
        H[:, diag, diag] += problem.entropy / np.maximum(x_flat, 1e-12)
    H[:, diag, diag] += ridge

    D = _equality_jacobian(M, N)
    K = np.zeros((B, P + N, P + N))
    K[:, :P, :P] = H
    K[:, :P, P:] = D.T
    K[:, P:, :P] = D
    rhs = np.concatenate([grad_X.reshape(B, P), np.zeros((B, N))], axis=1)
    try:
        u = np.linalg.solve(K, rhs[..., None])[..., 0][:, :P]
    except np.linalg.LinAlgError:
        # A singular instance poisons the whole stacked factorization; fall
        # back to the scalar least-squares-capable path per instance.
        u = np.stack(
            [_solve_saddle(H[b], D, grad_X[b].ravel(), 0.0) for b in range(B)]
        )
    U = u.reshape(B, M, N)

    S = np.einsum("bmn,bmn->bm", T, U)  # Σ_j t_ij u_ij per cluster
    W = np.einsum("bm,bm->b", w, S)
    dT = -(w[:, :, None] * U + beta * X_star * (w * (S - W[:, None]))[:, :, None])
    au = np.einsum("bmn,bmn->b", A, U)
    dA = (lam / mn_s)[:, None, None] * U - (lam / mn_s**2)[
        :, None, None
    ] * X_star * au[:, None, None]
    return BatchKKTGradients(dT=dT, dA=dA)
