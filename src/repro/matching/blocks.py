"""Block-decomposed window solves: split one barrier program into
independent sub-programs and solve them as a batched instance.

Large dispatch windows (hundreds of tasks over hundreds of clusters) are
rarely *dense*: an exchange platform's fleet spans hardware classes, and a
task whose execution time on an off-class cluster is several times its
best time never receives meaningful mass in the relaxed optimum.  Dropping
those dominated edges leaves a sparse task–cluster *viability graph*
whose connected components are independent matching problems — the
granular-allocation decomposition of CvxCluster (PAPERS.md), specialized
to the barrier objective of Eq. (9):

- the smoothed makespan couples tasks only through per-cluster loads, so
  two tasks that share no viable cluster never interact through it;
- the global reliability constraint Σ x·a / (MN) ≥ γ is *split* across
  blocks in proportion to each block's attainable reliability mass
  (per-task best reliability, summed).  Block-level feasibility then
  implies global feasibility: the assembled slack is the block-size
  weighted sum of the (positive) block slacks.

Each block is a full dense sub-program over its clusters × tasks (the
viability mask only locates the components; dominated *within-block*
edges stay available to the solver), so the only restriction relative to
the dense solve is "no cross-block assignment" — exact for genuinely
disconnected instances, and a measured, benchmarked gap otherwise.

Blocks of identical shape are stacked and solved by one
:func:`repro.matching.batch.solve_relaxed_batch` call (float32 by
default, per-instance freezing, step-memory trial cascade), so a
200-cluster window decomposing into four 50-cluster blocks costs one
vectorized descent instead of a single stiff 200-cluster one — each block
gets its own normalized step scale instead of inheriting the stiffest
block's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.matching.batch import (
    BatchProblem,
    _feasible_start_batch,
    batch_barrier_value,
    solve_relaxed_batch,
)
from repro.matching.objectives import barrier_value
from repro.matching.problem import MatchingProblem
from repro.matching.relaxed import RelaxedSolution, SolverConfig, solve_relaxed
from repro.telemetry import ITER_BUCKETS, SIZE_BUCKETS, get_recorder

__all__ = [
    "BlockConfig",
    "Block",
    "BlockStructure",
    "BlockSolution",
    "viability_mask",
    "analyze_blocks",
    "solve_relaxed_blocks",
]

#: Strictly positive floor for seeded columns (mirror updates need every
#: coordinate alive) — matches repro.serve.cache._COL_FLOOR.
_SEED_FLOOR = 1e-6


@dataclass(frozen=True)
class BlockConfig:
    """Knobs of the structure analyzer and the batched block driver."""

    #: A cluster is viable for a task when its time is within this factor
    #: of the task's best time.  Large values keep the graph dense (one
    #: block = exact dense solve); small values split aggressively.
    time_dominance: float = 4.0
    #: Always keep each task's ``min_viable`` fastest clusters viable,
    #: whatever the dominance rule says — no task may end up isolated.
    min_viable: int = 2
    #: Trial-cascade depth of the batched line search (the scalar solver's
    #: ``backtrack`` analogue; 6 levels cover lr shrinkage down to 1/32).
    halvings: int = 6
    #: Step-memory line search (see ``solve_relaxed_batch``): open each
    #: iteration at the previously accepted halving level.
    adaptive_trials: bool = True
    #: Batch precision: "float32" halves memory traffic of large windows;
    #: "float64" for bit-level comparisons against the scalar path.
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.time_dominance < 1.0:
            raise ValueError("time_dominance must be >= 1")
        if self.min_viable < 1:
            raise ValueError("min_viable must be >= 1")
        if self.halvings < 1:
            raise ValueError("halvings must be >= 1")
        if self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32' or 'float64'")

    @property
    def np_dtype(self) -> np.dtype:
        return np.float32 if self.dtype == "float32" else np.float64


@dataclass(frozen=True)
class Block:
    """One independent sub-program: row/column indices into the problem."""

    cluster_idx: np.ndarray  # sorted indices into rows of T/A
    task_idx: np.ndarray  # sorted indices into columns of T/A

    @property
    def shape(self) -> tuple[int, int]:
        return len(self.cluster_idx), len(self.task_idx)


@dataclass(frozen=True)
class BlockStructure:
    """Decomposition of one :class:`MatchingProblem` into blocks."""

    viable: np.ndarray = field(repr=False)  # (M, N) bool viability mask
    blocks: tuple[Block, ...]
    #: Clusters viable for no task at all — they receive zero load.
    idle_clusters: np.ndarray = field(repr=False)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def shapes(self) -> tuple[tuple[int, int], ...]:
        return tuple(b.shape for b in self.blocks)

    @property
    def largest(self) -> tuple[int, int]:
        return max(self.shapes, key=lambda s: s[0] * s[1])


@dataclass(frozen=True)
class BlockSolution(RelaxedSolution):
    """A :class:`RelaxedSolution` assembled from per-block solves.

    Drop-in for serving consumers (warm-start cache, window stats):
    ``X`` is the full (M, N) assignment, ``objective`` the *dense*
    barrier value of the assembled iterate, ``iterations`` the parallel
    depth of the batched descent (the largest per-group iteration count —
    what bounds wall clock, and what ``serve/solve_iterations`` reports).
    """

    n_blocks: int = 1
    block_shapes: tuple[tuple[int, int], ...] = ()
    batched_groups: int = 0
    #: True when the problem fell back to the scalar path (parallel
    #: speedups / ablation objectives are not batchable).
    scalar_fallback: bool = False


def viability_mask(
    T: np.ndarray, *, time_dominance: float = 4.0, min_viable: int = 2
) -> np.ndarray:
    """Boolean (M, N) mask of non-dominated task–cluster edges.

    An edge survives when the cluster's time is within ``time_dominance``
    of the task's best time; each task additionally keeps its
    ``min_viable`` fastest clusters so no column can go empty.
    """
    T = np.asarray(T)
    M, N = T.shape
    viable = T <= time_dominance * T.min(axis=0, keepdims=True)
    keep = min(min_viable, M)
    if keep > 0:
        fastest = np.argsort(T, axis=0, kind="stable")[:keep]
        viable[fastest, np.arange(N)[None, :]] = True
    return viable


def analyze_blocks(
    problem: MatchingProblem, config: BlockConfig | None = None
) -> BlockStructure:
    """Split a problem into the connected components of its viability graph.

    The per-block split of the reliability constraint (see
    :func:`solve_relaxed_blocks`) distributes γ in proportion to the
    viable best-reliability mass, so the mask must retain enough of that
    mass for every block's share to stay strictly attainable.  When the
    dominance pruning cut below the global requirement γ·M·N — only
    possible when γ sits near the *unrestricted* reliability optimum —
    every task's most reliable cluster is re-added; otherwise the mask is
    left alone, since the unconditional argmax edge would glue otherwise
    independent components (reliability does not track hardware class).
    """
    cfg = config or BlockConfig()
    M, N = problem.M, problem.N
    viable = viability_mask(
        problem.T, time_dominance=cfg.time_dominance, min_viable=cfg.min_viable
    )
    mass = float(np.where(viable, problem.A, 0.0).max(axis=0).sum())
    if mass <= problem.gamma * M * N * (1.0 + 1e-9):
        viable[problem.A.argmax(axis=0), np.arange(N)] = True

    # Union-find over clusters; each task unions its viable rows.
    parent = np.arange(M)

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    rows_per_task: list[np.ndarray] = []
    for j in range(N):
        rows = np.flatnonzero(viable[:, j])
        rows_per_task.append(rows)
        root = find(int(rows[0]))
        for i in rows[1:]:
            parent[find(int(i))] = root

    used = viable.any(axis=1)
    roots: dict[int, int] = {}
    cluster_groups: list[list[int]] = []
    task_groups: list[list[int]] = []
    for i in range(M):
        if not used[i]:
            continue
        r = find(i)
        if r not in roots:
            roots[r] = len(cluster_groups)
            cluster_groups.append([])
            task_groups.append([])
        cluster_groups[roots[r]].append(i)
    for j in range(N):
        task_groups[roots[find(int(rows_per_task[j][0]))]].append(j)

    blocks = tuple(
        Block(cluster_idx=np.asarray(ci, dtype=np.intp),
              task_idx=np.asarray(tj, dtype=np.intp))
        for ci, tj in zip(cluster_groups, task_groups)
    )
    return BlockStructure(
        viable=viable, blocks=blocks, idle_clusters=np.flatnonzero(~used)
    )


def _block_gammas(
    problem: MatchingProblem, structure: BlockStructure
) -> np.ndarray:
    """Per-block reliability thresholds whose joint satisfaction implies
    the global constraint.

    The global program requires Σ x·a ≥ γ·M·N reliability mass.  Each
    block is charged the share of that mass proportional to its viable
    attainable mass ``G_b = Σ_{j∈b} max_{i viable} a_ij``; since
    ``Σ_b G_b = G > γ·M·N`` whenever the global γ is strictly attainable,
    every block's charge is strictly below its own attainable mass and
    the block barrier keeps a non-empty interior.  Assembling strictly
    feasible block iterates yields global slack
    ``Σ_b m_b·k_b·slack_b / (M·N) > 0``.
    """
    best = np.where(structure.viable, problem.A, 0.0).max(axis=0)
    G = float(best.sum())
    R_total = problem.gamma * problem.M * problem.N
    gammas = np.empty(structure.n_blocks)
    for b, blk in enumerate(structure.blocks):
        G_b = float(best[blk.task_idx].sum())
        share = G_b / G if G > 0 else 1.0 / structure.n_blocks
        m_b, k_b = blk.shape
        gammas[b] = R_total * share / (m_b * k_b)
    return gammas


def solve_relaxed_blocks(
    problem: MatchingProblem,
    config: SolverConfig | None = None,
    *,
    block_config: BlockConfig | None = None,
    x0: np.ndarray | None = None,
    structure: BlockStructure | None = None,
) -> BlockSolution:
    """Decompose, batch-solve, and reassemble one window's relaxed program.

    Blocks of identical shape are stacked into one
    :class:`~repro.matching.batch.BatchProblem` per shape and solved by a
    single :func:`~repro.matching.batch.solve_relaxed_batch` call.  A
    warm start ``x0`` (full (M, N), e.g. from the serving cache or the
    learned warm-start head) is sliced per block and *hedged* per
    instance against the cold interior start — the batch analogue of
    ``solve_relaxed``'s cold-start hedge, so a bad seed can never open
    the descent from a worse point than a cold solve would.

    Problems the batch machinery cannot express (parallel speedups,
    linear-cost / hinge-penalty ablations) fall back to the scalar path
    unchanged.
    """
    cfg = config or SolverConfig()
    bcfg = block_config or BlockConfig()
    rec = get_recorder()
    tele = rec.enabled

    if problem.is_parallel or problem.cost != "makespan" or problem.penalty != "log_barrier":
        sol = solve_relaxed(problem, cfg, x0=x0)
        if tele:
            rec.counter_add("blocks/scalar_fallback")
        return BlockSolution(
            X=sol.X, objective=sol.objective, iterations=sol.iterations,
            converged=sol.converged, history=sol.history, halvings=sol.halvings,
            n_blocks=1, block_shapes=((problem.M, problem.N),),
            batched_groups=0, scalar_fallback=True,
        )

    structure = structure or analyze_blocks(problem, bcfg)
    gammas = _block_gammas(problem, structure)
    if x0 is not None:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != (problem.M, problem.N):
            raise ValueError(
                f"x0 must have shape {(problem.M, problem.N)}, got {x0.shape}"
            )

    # Group blocks by shape so each group is one batched solve.
    groups: dict[tuple[int, int], list[int]] = {}
    for b, blk in enumerate(structure.blocks):
        groups.setdefault(blk.shape, []).append(b)

    X_full = np.zeros((problem.M, problem.N))
    iterations = 0
    converged = True
    for shape, members in groups.items():
        blks = [structure.blocks[b] for b in members]
        T_g = np.stack([problem.T[np.ix_(blk.cluster_idx, blk.task_idx)] for blk in blks])
        A_g = np.stack([problem.A[np.ix_(blk.cluster_idx, blk.task_idx)] for blk in blks])
        bp = BatchProblem(
            T=T_g, A=A_g, gamma=gammas[members], beta=problem.beta,
            lam=problem.lam, entropy=problem.entropy, dtype=bcfg.np_dtype,
        )
        seed = None
        if x0 is not None:
            seed = np.stack([
                x0[np.ix_(blk.cluster_idx, blk.task_idx)] for blk in blks
            ]).astype(bcfg.np_dtype)
            seed = np.maximum(seed, _SEED_FLOOR)
            seed /= seed.sum(axis=1, keepdims=True)
            # Cold-start hedge, per instance: an infeasible (+inf) or
            # simply worse seed is replaced by the interior blend start.
            cold = _feasible_start_batch(bp)
            f_seed = batch_barrier_value(seed, bp)
            f_cold = batch_barrier_value(cold, bp)
            worse = ~(f_seed < f_cold)
            seed = np.where(worse[:, None, None], cold, seed)
        sol = solve_relaxed_batch(
            bp, lr=cfg.lr, max_iters=cfg.max_iters, x0=seed,
            halvings=bcfg.halvings, tol=cfg.tol, patience=cfg.patience,
            adaptive_trials=bcfg.adaptive_trials,
        )
        iterations = max(iterations, sol.iterations)
        converged = converged and bool(np.all(sol.converged))
        for g, blk in enumerate(blks):
            X_full[np.ix_(blk.cluster_idx, blk.task_idx)] = sol.X[g]

    objective = float(barrier_value(X_full, problem))
    if tele:
        rec.counter_add("blocks/solves")
        rec.observe("blocks/count", structure.n_blocks, bounds=SIZE_BUCKETS)
        rec.observe("blocks/iterations", iterations, bounds=ITER_BUCKETS)
        for m_b, k_b in structure.shapes:
            rec.observe("blocks/block_tasks", k_b, bounds=SIZE_BUCKETS)
    return BlockSolution(
        X=X_full, objective=objective, iterations=iterations,
        converged=converged, history=np.asarray([objective]), halvings=0,
        n_blocks=structure.n_blocks, block_shapes=structure.shapes,
        batched_groups=len(groups), scalar_fallback=False,
    )
