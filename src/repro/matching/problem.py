"""The cluster-task matching problem container (paper Eq. 2).

Bundles the performance matrices with the optimization hyperparameters so
solvers, differentiators and metrics all consume one validated object:

- ``T`` (M×N): execution time of task j on cluster i;
- ``A`` (M×N): reliability of task j on cluster i;
- ``gamma``: reliability threshold of constraint (2b)/(4);
- ``beta``: smoothing sharpness of Eq. (8);
- ``lam``: log-barrier weight of Eq. (9);
- ``speedup``: ζ functions (one per cluster, or one shared) for the
  parallel-execution extension (Eq. 16); ``None`` means sequential.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.matching.speedup import IdentitySpeedup, SpeedupFunction
from repro.utils.validation import check_matrix, check_positive

__all__ = ["MatchingProblem", "feasible_gamma"]


@dataclass(frozen=True)
class MatchingProblem:
    """One instance of optimization problem (2) with its relaxation knobs."""

    T: np.ndarray
    A: np.ndarray
    gamma: float
    beta: float = 5.0
    lam: float = 0.01
    speedup: tuple[SpeedupFunction, ...] | None = None
    #: Entropy regularization weight τ on the relaxed decision variable
    #: (``+ τ Σ x log x``).  Zero for deployment solves; training solves use
    #: a small positive τ so the argmin stays strictly interior and the KKT
    #: system of Eq. (15) is well-posed — the standard decision-focused-
    #: learning smoothing (Wilder et al. 2019); documented in DESIGN.md.
    entropy: float = 0.0
    #: Time-cost functional: ``"makespan"`` is the paper's Eq. (3) max;
    #: ``"linear"`` is Table 1's ablation (1) — the *sum* of cluster times.
    cost: str = "makespan"
    #: Constraint handling: ``"log_barrier"`` is Eq. (9)'s interior-point
    #: term; ``"hinge"`` is Table 1's ablation (2) — the hard penalty
    #: ``λ · max(0, γ − g(X, A))``.
    penalty: str = "log_barrier"

    def __post_init__(self) -> None:
        T = check_matrix(self.T, name="T")
        A = check_matrix(self.A, name="A", shape=T.shape)
        if np.any(T <= 0):
            raise ValueError("execution times must be strictly positive")
        if np.any((A < 0) | (A > 1)):
            raise ValueError("reliabilities must lie in [0, 1]")
        check_positive(self.beta, name="beta")
        check_positive(self.lam, name="lam")
        check_positive(self.entropy, name="entropy", strict=False)
        if self.cost not in ("makespan", "linear"):
            raise ValueError(f"cost must be 'makespan' or 'linear', got {self.cost!r}")
        if self.penalty not in ("log_barrier", "hinge"):
            raise ValueError(
                f"penalty must be 'log_barrier' or 'hinge', got {self.penalty!r}"
            )
        T.setflags(write=False)
        A.setflags(write=False)
        object.__setattr__(self, "T", T)
        object.__setattr__(self, "A", A)
        if self.speedup is not None:
            sp = tuple(self.speedup)
            if len(sp) == 1:
                sp = sp * T.shape[0]
            if len(sp) != T.shape[0]:
                raise ValueError(
                    f"need 1 or M={T.shape[0]} speedup functions, got {len(sp)}"
                )
            object.__setattr__(self, "speedup", sp)

    # ------------------------------------------------------------------ #

    @property
    def M(self) -> int:
        """Number of clusters."""
        return self.T.shape[0]

    @property
    def N(self) -> int:
        """Number of tasks."""
        return self.T.shape[1]

    @property
    def is_parallel(self) -> bool:
        """Whether the non-convex parallel-execution objective applies."""
        return self.speedup is not None and any(
            not isinstance(s, IdentitySpeedup) for s in self.speedup
        )

    def speedup_tuple(self) -> tuple[SpeedupFunction, ...]:
        """ζ functions, defaulting to identity for the sequential setting."""
        if self.speedup is None:
            return (IdentitySpeedup(),) * self.M
        return self.speedup

    # ------------------------------------------------------------------ #

    def with_predictions(self, T_hat: np.ndarray, A_hat: np.ndarray) -> "MatchingProblem":
        """The same problem instance with predicted matrices swapped in.

        Predicted times are floored at a small positive value and predicted
        reliabilities clipped into [0, 1] so imperfect predictors cannot
        produce an invalid problem.  If the platform's γ is unattainable
        *under the predictions* (a predictor that underestimates
        reliability across the board), γ is clamped to the strictest
        attainable threshold — the platform still enforces the constraint
        as hard as its beliefs allow.
        """
        T_hat = np.maximum(np.asarray(T_hat, dtype=np.float64), 1e-4)
        A_hat = np.clip(np.asarray(A_hat, dtype=np.float64), 0.0, 1.0)
        M = A_hat.shape[0]
        best_val = float(A_hat.max(axis=0).mean() / M)
        uniform_val = float(A_hat.mean() / M)
        attainable = best_val - 0.05 * max(best_val - uniform_val, 1e-5)
        return replace(self, T=T_hat, A=A_hat, gamma=min(self.gamma, attainable))

    def uniform_assignment(self) -> np.ndarray:
        """The barycentric interior point X = 1/M (strictly feasible in the
        box and the simplex; reliability feasibility is checked separately)."""
        return np.full((self.M, self.N), 1.0 / self.M)

    def feasible_start(self, margin_fraction: float = 0.25) -> np.ndarray:
        """A strictly feasible interior point for the barrier solver.

        Blends the uniform assignment with the reliability-greedy one
        (every task soft-assigned to its most reliable cluster).  The
        slack g(X) is linear in the blend weight α, so the smallest α
        reaching ``margin_fraction`` of the maximum achievable slack is
        closed-form.  Raises if even the greedy assignment is infeasible —
        then γ is unattainable and the instance is ill-posed.
        """
        uniform = self.uniform_assignment()
        s_u = self.reliability_slack(uniform)
        greedy = np.zeros((self.M, self.N))
        greedy[self.A.argmax(axis=0), np.arange(self.N)] = 1.0
        s_g = self.reliability_slack(greedy)
        if s_g <= 0:
            raise ValueError(
                f"gamma={self.gamma:.4f} is unattainable: even the most reliable "
                f"assignment has slack {s_g:.4g}"
            )
        target = margin_fraction * s_g
        if s_u >= target:
            return uniform
        # α at which the blend reaches the margin target; additionally step
        # a fixed fraction past the exact feasibility point so the start is
        # strictly interior even when s_g is tiny relative to |s_u|.
        alpha_target = (target - s_u) / (s_g - s_u)
        alpha_feasible = (0.0 - s_u) / (s_g - s_u)
        alpha = max(alpha_target, alpha_feasible + 0.25 * (1.0 - alpha_feasible))
        alpha = min(alpha, 1.0 - 1e-6)
        return (1.0 - alpha) * uniform + alpha * greedy

    def reliability_slack(self, X: np.ndarray) -> float:
        """g(X, A) of Eq. (4): mean-reliability surplus over γ."""
        return float(np.sum(X * self.A) / (self.M * self.N) - self.gamma)

    def is_strictly_feasible(self, X: np.ndarray, margin: float = 0.0) -> bool:
        """Whether X is interior w.r.t. the reliability constraint."""
        return self.reliability_slack(X) > margin


def feasible_gamma(
    T: np.ndarray,
    A: np.ndarray,
    *,
    quantile: float = 0.5,
) -> float:
    """Pick a γ that is demanding but attainable for the given instance.

    γ is on the scale of Eq. (4) — the sum of assigned reliabilities divided
    by M·N, i.e. ``mean assigned reliability / M``.  We interpolate between
    the value achieved by the uniform assignment (always feasible, value =
    mean(A)/M) and the best achievable (assign every task to its most
    reliable cluster): ``quantile = 0`` gives the former, ``1`` the latter.
    """
    A = check_matrix(A, name="A")
    M, N = A.shape
    uniform_val = float(A.mean() / M)
    best_val = float(A.max(axis=0).mean() / M)
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    # Back off by a hair so the threshold is always *strictly* attainable —
    # degenerate instances (constant A, quantile 1) would otherwise leave
    # the log barrier with an empty interior.
    return uniform_val + quantile * (best_val - uniform_val) - 1e-6
