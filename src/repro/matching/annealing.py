"""Simulated-annealing solver for the *discrete* matching problem.

Complements the exact solvers: branch-and-bound is exact but worst-case
exponential, and relax-and-round can leave integrality gaps on adversarial
instances.  Annealing searches the binary assignment space directly with
single-task reassignment moves, a feasibility-aware penalized energy, and
a geometric cooling schedule — a strong incumbent generator for large N
(used by the oracle at Fig. 5's biggest scales and available to users with
instances beyond branch-and-bound's reach).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.exact import ExactSolution
from repro.matching.objectives import decision_cost, reliability_value
from repro.matching.problem import MatchingProblem
from repro.matching.rounding import assignment_from_labels, round_assignment
from repro.matching.relaxed import SolverConfig, solve_relaxed
from repro.utils.rng import as_generator

__all__ = ["AnnealingConfig", "solve_annealing"]


@dataclass(frozen=True)
class AnnealingConfig:
    """Cooling schedule and move budget."""

    steps: int = 4000
    t_start: float = 0.25  # initial temperature, relative to the initial cost
    t_end: float = 1e-3
    infeasibility_weight: float = 10.0  # energy penalty per unit of violation
    restarts: int = 2

    def __post_init__(self) -> None:
        if self.steps <= 0 or self.restarts <= 0:
            raise ValueError("steps and restarts must be positive")
        if not 0 < self.t_end <= self.t_start:
            raise ValueError("need 0 < t_end <= t_start")
        if self.infeasibility_weight < 0:
            raise ValueError("infeasibility_weight must be >= 0")


def _energy(X: np.ndarray, problem: MatchingProblem, w: float) -> float:
    violation = max(0.0, -reliability_value(X, problem))
    return decision_cost(X, problem) + w * violation * problem.M * problem.N


def solve_annealing(
    problem: MatchingProblem,
    config: AnnealingConfig | None = None,
    rng: np.random.Generator | int | None = None,
    *,
    warm_start: bool = True,
) -> ExactSolution:
    """Anneal over binary assignments; returns the best feasible incumbent.

    ``warm_start=True`` seeds the first restart from the relax-and-round
    deployment solution (subsequent restarts start random).  The returned
    ``nodes_explored`` counts proposed moves.
    """
    cfg = config or AnnealingConfig()
    rng = as_generator(rng)
    M, N = problem.M, problem.N
    best_X: np.ndarray | None = None
    best_cost = np.inf
    moves = 0

    starts: list[np.ndarray] = []
    if warm_start:
        relaxed = solve_relaxed(problem, SolverConfig(max_iters=150))
        starts.append(round_assignment(relaxed.X, problem))
    while len(starts) < cfg.restarts:
        starts.append(assignment_from_labels(rng.integers(0, M, N), M))

    cool = (cfg.t_end / cfg.t_start) ** (1.0 / max(cfg.steps - 1, 1))
    for X0 in starts:
        X = X0.copy()
        labels = X.argmax(axis=0)
        energy = _energy(X, problem, cfg.infeasibility_weight)
        scale = max(energy, 1e-9)
        temp = cfg.t_start * scale
        for _ in range(cfg.steps):
            moves += 1
            j = int(rng.integers(0, N))
            new_i = int(rng.integers(0, M))
            old_i = labels[j]
            if new_i == old_i:
                temp *= cool
                continue
            X[old_i, j], X[new_i, j] = 0.0, 1.0
            new_energy = _energy(X, problem, cfg.infeasibility_weight)
            accept = new_energy <= energy or rng.random() < np.exp(
                -(new_energy - energy) / max(temp, 1e-12)
            )
            if accept:
                labels[j] = new_i
                energy = new_energy
                if (
                    reliability_value(X, problem) >= -1e-12
                    and decision_cost(X, problem) < best_cost
                ):
                    best_cost = decision_cost(X, problem)
                    best_X = X.copy()
            else:
                X[new_i, j], X[old_i, j] = 0.0, 1.0
            temp *= cool

    if best_X is None:
        return ExactSolution(X=None, objective=np.inf, feasible=False,
                             nodes_explored=moves)
    return ExactSolution(X=best_X, objective=float(best_cost), feasible=True,
                         nodes_explored=moves)
