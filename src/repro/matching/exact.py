"""Exact solvers for the discrete matching problem (Eq. 2).

Used to (a) cross-validate the relax-and-round pipeline in tests and
(b) quantify the integrality/rounding gap in ablation benchmarks.  Two
algorithms:

- :func:`solve_bruteforce` — enumerate all M^N assignments (tiny instances);
- :func:`solve_branch_and_bound` — depth-first search assigning tasks in
  decreasing maximum-time order with two prunes: the current partial
  makespan already exceeding the incumbent, and an optimistic reliability
  bound (every unassigned task at its most reliable cluster) falling short
  of γ.  Exact for moderate instances (M·N up to a few hundred states
  explored in practice thanks to the LPT-style ordering).

Both optimize the *parallel-aware* objective when the problem carries
speedup functions, evaluating ζ at integer loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.matching.objectives import makespan, reliability_value
from repro.matching.problem import MatchingProblem
from repro.matching.rounding import assignment_from_labels

__all__ = ["ExactSolution", "solve_bruteforce", "solve_branch_and_bound"]


@dataclass(frozen=True)
class ExactSolution:
    """An exact discrete optimum (or proof of infeasibility)."""

    X: np.ndarray | None
    objective: float
    feasible: bool
    nodes_explored: int


def solve_bruteforce(problem: MatchingProblem, *, max_states: int = 2_000_000) -> ExactSolution:
    """Enumerate every assignment; raises if M^N exceeds ``max_states``."""
    states = problem.M**problem.N
    if states > max_states:
        raise ValueError(
            f"instance has {states} assignments (> {max_states}); use branch and bound"
        )
    best_obj = np.inf
    best_labels: tuple[int, ...] | None = None
    explored = 0
    for labels in product(range(problem.M), repeat=problem.N):
        explored += 1
        X = assignment_from_labels(np.array(labels), problem.M)
        if reliability_value(X, problem) < 0:
            continue
        obj = makespan(X, problem)
        if obj < best_obj:
            best_obj = obj
            best_labels = labels
    if best_labels is None:
        return ExactSolution(X=None, objective=np.inf, feasible=False, nodes_explored=explored)
    return ExactSolution(
        X=assignment_from_labels(np.array(best_labels), problem.M),
        objective=float(best_obj),
        feasible=True,
        nodes_explored=explored,
    )


def solve_branch_and_bound(
    problem: MatchingProblem, *, node_limit: int = 5_000_000
) -> ExactSolution:
    """Exact DFS branch-and-bound (see module docstring).

    For the parallel objective the makespan bound uses the ζ floor (the
    smallest possible multiplier), keeping the bound admissible.
    """
    M, N = problem.M, problem.N
    T, A = problem.T, problem.A
    # LPT-style: hardest tasks (largest max time) first → tight bounds early.
    order = np.argsort(-T.max(axis=0))
    # Optimistic per-task reliability (for the feasibility prune).
    best_rel = A.max(axis=0)
    rel_suffix = np.concatenate([np.cumsum(best_rel[order][::-1])[::-1], [0.0]])
    gamma_total = problem.gamma * M * N  # constraint in summed form

    sp = problem.speedup_tuple()
    zeta_floor = np.array([float(np.min(s.value(np.arange(1, N + 1, dtype=float)))) for s in sp])

    loads = np.zeros(M)
    counts = np.zeros(M, dtype=np.int64)
    labels = np.full(N, -1, dtype=np.int64)
    best = {"obj": np.inf, "labels": None, "nodes": 0}

    def realized_makespan() -> float:
        zeta = np.array(
            [float(s.value(np.array(float(max(k, 1))))) if k > 0 else 1.0
             for s, k in zip(sp, counts)]
        )
        return float(np.max(zeta * loads))

    def dfs(pos: int, rel_sum: float) -> None:
        best["nodes"] += 1
        if best["nodes"] > node_limit:
            raise RuntimeError("branch-and-bound node limit exceeded")
        if pos == N:
            obj = realized_makespan()
            if obj < best["obj"] and rel_sum >= gamma_total - 1e-12:
                best["obj"] = obj
                best["labels"] = labels.copy()
            return
        # Reliability prune: even assigning all remaining tasks optimally
        # cannot reach the threshold.
        if rel_sum + rel_suffix[pos] < gamma_total - 1e-12:
            return
        # Makespan prune: ζ can only shrink loads down to its floor.
        if float(np.max(zeta_floor * loads)) >= best["obj"]:
            return
        j = order[pos]
        # Try clusters in increasing time for this task (good solutions first).
        for i in np.argsort(T[:, j]):
            loads[i] += T[i, j]
            counts[i] += 1
            labels[j] = i
            dfs(pos + 1, rel_sum + A[i, j])
            loads[i] -= T[i, j]
            counts[i] -= 1
            labels[j] = -1

    dfs(0, 0.0)
    if best["labels"] is None:
        return ExactSolution(X=None, objective=np.inf, feasible=False,
                             nodes_explored=best["nodes"])
    X = assignment_from_labels(best["labels"], M)
    return ExactSolution(X=X, objective=float(best["obj"]), feasible=True,
                         nodes_explored=best["nodes"])
