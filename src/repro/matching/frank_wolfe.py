"""Frank–Wolfe (conditional gradient) solver for the relaxed matching.

A projection-free alternative to Algorithm 1: the feasible set is a product
of per-task simplices, whose linear minimization oracle is trivial — for
each task, put all mass on the cluster with the smallest gradient entry.
Each iteration moves toward that vertex with a step chosen by backtracking
line search on the barrier objective.

Compared to mirror descent, Frank–Wolfe iterates are sparse convex
combinations of vertices (at most one new cluster per task per iteration),
which makes the final rounding particularly stable; it is exposed as an
alternative engine for ablation and as a teaching implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.objectives import barrier_gradient, barrier_value
from repro.matching.problem import MatchingProblem
from repro.matching.relaxed import RelaxedSolution

__all__ = ["FrankWolfeConfig", "solve_frank_wolfe"]


@dataclass(frozen=True)
class FrankWolfeConfig:
    """Hyperparameters of the conditional-gradient solver."""

    max_iters: int = 300
    tol: float = 1e-8  # stop when the FW duality gap falls below this
    backtrack: int = 25
    init_step: float = 1.0  # initial step before backtracking (γ_k ≤ 1)

    def __post_init__(self) -> None:
        if self.max_iters <= 0:
            raise ValueError(f"max_iters must be > 0, got {self.max_iters}")
        if not 0.0 < self.init_step <= 1.0:
            raise ValueError(f"init_step must be in (0, 1], got {self.init_step}")
        if self.backtrack < 1:
            raise ValueError("backtrack must be >= 1")


def _vertex_oracle(grad: np.ndarray) -> np.ndarray:
    """Linear minimization oracle over the product of column simplices."""
    m, n = grad.shape
    V = np.zeros((m, n))
    V[grad.argmin(axis=0), np.arange(n)] = 1.0
    return V


def solve_frank_wolfe(
    problem: MatchingProblem,
    config: FrankWolfeConfig | None = None,
    *,
    x0: np.ndarray | None = None,
) -> RelaxedSolution:
    """Minimize the barrier objective by conditional gradient.

    Stops when the Frank–Wolfe duality gap ``⟨∇F, X − V⟩`` — an upper bound
    on the optimality gap for convex F — drops below ``tol``.
    """
    cfg = config or FrankWolfeConfig()
    X = problem.feasible_start() if x0 is None else np.array(x0, dtype=np.float64)
    if X.shape != (problem.M, problem.N):
        raise ValueError(f"x0 must have shape {(problem.M, problem.N)}, got {X.shape}")
    if not problem.is_strictly_feasible(X):
        X = problem.feasible_start()

    f_cur = barrier_value(X, problem)
    history = np.empty(cfg.max_iters + 1)
    history[0] = f_cur
    it = 0
    for it in range(1, cfg.max_iters + 1):
        grad = barrier_gradient(X, problem)
        V = _vertex_oracle(grad)
        direction = V - X
        gap = float(-np.sum(grad * direction))  # ⟨∇F, X − V⟩ ≥ 0
        if gap < cfg.tol:
            history = history[:it]
            return RelaxedSolution(X=X, objective=f_cur, iterations=it - 1,
                                   converged=True, history=history.copy())
        step = cfg.init_step
        accepted = False
        for _ in range(cfg.backtrack):
            X_new = X + step * direction
            f_new = barrier_value(X_new, problem)
            if np.isfinite(f_new) and f_new < f_cur - 1e-15:
                accepted = True
                break
            step *= 0.5
        if not accepted:
            history = history[:it]
            return RelaxedSolution(X=X, objective=f_cur, iterations=it - 1,
                                   converged=True, history=history.copy())
        X, f_cur = X_new, f_new
        history[it] = f_cur
    return RelaxedSolution(X=X, objective=f_cur, iterations=it, converged=False,
                           history=history[: it + 1].copy())
