"""Speedup-ratio functions ζ for parallel task execution (paper §3.4).

When a cluster runs several tasks concurrently, the realized total time is
``ζ_i(k) · Σ t`` where ``k`` is the number of tasks on the cluster and
``ζ_i`` captures the scheduler's parallel efficiency.  §4.5 instantiates ζ
as "an exponential decay curve from 1 to 0.6" — one task gives no overlap
(ζ=1) while many tasks saturate at a 40% reduction.

Implementations must be smooth in ``k`` because Algorithm 1 evaluates them
at *fractional* loads ``k_i = x_iᵀ1`` of the relaxed assignment, and the
non-convex objective (Eq. 16/17) differentiates through them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["SpeedupFunction", "IdentitySpeedup", "ExponentialDecaySpeedup", "PowerLawSpeedup"]


@runtime_checkable
class SpeedupFunction(Protocol):
    """Smooth map from (fractional) task count to a time multiplier."""

    def value(self, k: np.ndarray) -> np.ndarray:
        """ζ(k); defined for k >= 0, with ζ(k) ∈ (0, 1]."""
        ...

    def derivative(self, k: np.ndarray) -> np.ndarray:
        """dζ/dk — needed by the analytic gradient of Eq. (17)."""
        ...


@dataclass(frozen=True)
class IdentitySpeedup:
    """Sequential-exclusive execution: ζ ≡ 1 (the paper's base setting)."""

    def value(self, k: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(k, dtype=np.float64))

    def derivative(self, k: np.ndarray) -> np.ndarray:
        return np.zeros_like(np.asarray(k, dtype=np.float64))


@dataclass(frozen=True)
class ExponentialDecaySpeedup:
    """§4.5's ζ: exponential decay from 1 (at k=1) towards ``floor``.

    ``ζ(k) = floor + (1 − floor) · exp(−rate · max(k − 1, 0))``

    The max() keeps ζ=1 for sub-unit fractional loads; it is smoothed with
    a softplus so the derivative exists everywhere (gradient descent on the
    relaxed problem crosses k=1 freely).
    """

    floor: float = 0.6
    rate: float = 0.5
    smoothing: float = 8.0  # softplus sharpness for the (k-1)+ hinge

    def __post_init__(self) -> None:
        if not 0.0 < self.floor <= 1.0:
            raise ValueError(f"floor must be in (0, 1], got {self.floor}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.smoothing <= 0:
            raise ValueError(f"smoothing must be > 0, got {self.smoothing}")

    def _hinge(self, k: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Smooth (k−1)+ and its derivative via softplus."""
        z = self.smoothing * (np.asarray(k, dtype=np.float64) - 1.0)
        hinge = np.logaddexp(0.0, z) / self.smoothing
        dhinge = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
        return hinge, dhinge

    def value(self, k: np.ndarray) -> np.ndarray:
        hinge, _ = self._hinge(k)
        return self.floor + (1.0 - self.floor) * np.exp(-self.rate * hinge)

    def derivative(self, k: np.ndarray) -> np.ndarray:
        hinge, dhinge = self._hinge(k)
        return -(1.0 - self.floor) * self.rate * np.exp(-self.rate * hinge) * dhinge


@dataclass(frozen=True)
class PowerLawSpeedup:
    """Alternative ζ: ``k^(−p)`` saturating at ``floor`` — models Amdahl-style
    diminishing returns; used in ablations to test sensitivity to the ζ family.
    """

    exponent: float = 0.3
    floor: float = 0.5

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ValueError(f"exponent must be > 0, got {self.exponent}")
        if not 0.0 < self.floor <= 1.0:
            raise ValueError(f"floor must be in (0, 1], got {self.floor}")

    def value(self, k: np.ndarray) -> np.ndarray:
        k = np.maximum(np.asarray(k, dtype=np.float64), 1.0)
        return np.maximum(k**-self.exponent, self.floor)

    def derivative(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=np.float64)
        kc = np.maximum(k, 1.0)
        raw = -self.exponent * kc ** (-self.exponent - 1.0)
        active = (k > 1.0) & (kc**-self.exponent > self.floor)
        return np.where(active, raw, 0.0)
