"""Vectorized batch solver: many matching instances in one NumPy program.

MFCP's training round (Algorithm 2) generates large families of same-shape
instances of the identical barrier program: the M semi-predicted instances
of one epoch, the M×2S zeroth-order perturbations, the held-out validation
rounds.  Solving them one-by-one wastes the vector units; this module runs
mirror descent on a whole *batch* of instances simultaneously — all arrays
carry a leading batch dimension and every update is a fused
elementwise/`einsum` expression, following the hpc-parallel guidance
(vectorize the outer loop, not just the inner one).

Semantics match :func:`repro.matching.relaxed.solve_relaxed` with the
``"mirror"`` projection and normalized steps:

- the line search is a *vectorized trial cascade*: steps ``lr / 2^h`` for
  h = 0..halvings−1 are evaluated in one shot (the halving dimension is
  folded into the batch dimension) and the largest feasible, improving
  step wins independently per instance;
- per-instance convergence masking: an instance whose objective stops
  improving (scalar-path ``tol``/``patience`` semantics) or that accepts
  no step is *frozen* — it is removed from the active set and pays no
  further gradient or value work while the rest of the batch runs on.

Supported objective: the sequential (convex) makespan barrier — exactly
what the training loop batches in the convex benchmarks; the non-convex ζ
case falls back to the scalar path automatically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.telemetry import ITER_BUCKETS, LEVEL_BUCKETS, SIZE_BUCKETS, get_recorder

__all__ = [
    "BatchProblem",
    "BatchSolution",
    "solve_relaxed_batch",
    "batch_barrier_value",
    "batch_barrier_gradient",
    "batch_reliability_slack",
    "clamp_predictions_batch",
]


@dataclass(frozen=True)
class BatchProblem:
    """A batch of B same-shape sequential matching instances."""

    T: np.ndarray  # (B, M, N) strictly positive
    A: np.ndarray  # (B, M, N) in [0, 1]
    gamma: np.ndarray  # (B,)
    beta: float = 5.0
    lam: float = 0.01
    entropy: float = 0.0
    #: Storage/compute precision.  float64 (default) matches the scalar
    #: solver bit-for-bit in the equivalence tests; float32 halves memory
    #: traffic for throughput-bound consumers that tolerate ~1e-6 relative
    #: error per objective — the zeroth-order estimator's perturbation
    #: stacks, whose O(δ) smoothing bias dwarfs the rounding noise.
    dtype: np.dtype = np.float64

    def __post_init__(self) -> None:
        if self.dtype not in (np.float32, np.float64):
            raise ValueError("dtype must be np.float32 or np.float64")
        T = np.asarray(self.T, dtype=self.dtype)
        A = np.asarray(self.A, dtype=self.dtype)
        g = np.atleast_1d(np.asarray(self.gamma, dtype=self.dtype))
        if T.ndim != 3 or A.shape != T.shape:
            raise ValueError("T and A must be (B, M, N) arrays of equal shape")
        if g.shape != (T.shape[0],):
            raise ValueError(f"gamma must have shape ({T.shape[0]},), got {g.shape}")
        if np.any(T <= 0):
            raise ValueError("execution times must be strictly positive")
        if np.any((A < 0) | (A > 1)):
            raise ValueError("reliabilities must lie in [0, 1]")
        if self.beta <= 0 or self.lam <= 0 or self.entropy < 0:
            raise ValueError("beta, lam must be > 0 and entropy >= 0")
        object.__setattr__(self, "T", T)
        object.__setattr__(self, "A", A)
        object.__setattr__(self, "gamma", g)

    @property
    def B(self) -> int:
        return self.T.shape[0]

    @property
    def M(self) -> int:
        return self.T.shape[1]

    @property
    def N(self) -> int:
        return self.T.shape[2]


@dataclass(frozen=True)
class BatchSolution:
    """Final iterates of the batch solve.

    ``iterations`` is the largest per-instance iteration count (instances
    frozen by the convergence mask stop earlier); ``converged`` marks the
    instances that were frozen before the iteration budget ran out.
    """

    X: np.ndarray  # (B, M, N)
    objective: np.ndarray  # (B,)
    iterations: int
    converged: np.ndarray | None = None  # (B,) bool


_XEPS = 1e-12


def clamp_predictions_batch(
    T_hat: np.ndarray, A_hat: np.ndarray, gamma: np.ndarray | float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched :meth:`MatchingProblem.with_predictions` clamp rules.

    Floors predicted times, clips predicted reliabilities into [0, 1] and
    clamps each instance's γ to its strictest attainable threshold, so a
    batch assembled from imperfect predictors never has an empty barrier
    interior.  Returns ``(T, A, gamma)`` ready for :class:`BatchProblem`.
    """
    T_hat = np.asarray(T_hat)
    A_hat = np.asarray(A_hat)
    if T_hat.dtype != np.float32:
        T_hat = T_hat.astype(np.float64, copy=False)
        A_hat = A_hat.astype(np.float64, copy=False)
    T = np.maximum(T_hat, 1e-4)
    A = np.clip(A_hat, 0.0, 1.0)
    if T.ndim != 3 or A.shape != T.shape:
        raise ValueError("T_hat and A_hat must be (B, M, N) arrays of equal shape")
    M = A.shape[1]
    best_val = A.max(axis=1).mean(axis=1) / M
    uniform_val = A.mean(axis=(1, 2)) / M
    attainable = best_val - 0.05 * np.maximum(best_val - uniform_val, 1e-5)
    return T, A, np.minimum(gamma, attainable)


# --------------------------------------------------------------------- #
# Array-level objective helpers.  X may carry extra leading dimensions
# beyond (b, M, N) — the trial cascade exploits this by evaluating all
# halvings in one call with X of shape (H, b, M, N).
# --------------------------------------------------------------------- #


def _slack(X: np.ndarray, A: np.ndarray, gamma: np.ndarray) -> np.ndarray:
    M, N = X.shape[-2], X.shape[-1]
    return np.einsum("...mn,...mn->...", X, A) / (M * N) - gamma


def _value_from(
    X: np.ndarray,
    loads: np.ndarray,
    slack: np.ndarray,
    beta: float,
    lam: float,
    entropy: float,
) -> np.ndarray:
    """Barrier objective from precomputed loads/slack; +inf where infeasible."""
    z = beta * loads
    shift = z.max(axis=-1, keepdims=True)
    lse = (np.log(np.exp(z - shift).sum(axis=-1)) + shift[..., 0]) / beta
    out = np.where(slack > 0, lse - lam * np.log(np.maximum(slack, _XEPS)), np.inf)
    if entropy:
        Xc = np.maximum(X, _XEPS)
        out = out + entropy * np.sum(Xc * np.log(Xc), axis=(-2, -1))
    return out


def _value(
    X: np.ndarray,
    T: np.ndarray,
    A: np.ndarray,
    gamma: np.ndarray,
    beta: float,
    lam: float,
    entropy: float,
) -> np.ndarray:
    """Barrier objective per instance; +inf where infeasible.

    ``X`` may carry extra leading dimensions beyond ``T``/``A``/``gamma``
    (einsum broadcasts the ellipsis axes) — the trial cascade calls this
    with X of shape (H, b, M, N) against (b, M, N) instance data.
    """
    loads = np.einsum("...mn,...mn->...m", X, T)
    return _value_from(X, loads, _slack(X, A, gamma), beta, lam, entropy)


def _gradient(
    X: np.ndarray,
    T: np.ndarray,
    A: np.ndarray,
    slack: np.ndarray,
    beta: float,
    lam: float,
    entropy: float,
) -> np.ndarray:
    M, N = X.shape[-2], X.shape[-1]
    loads = np.einsum("...mn,...mn->...m", X, T)
    z = beta * loads
    z -= z.max(axis=-1, keepdims=True)
    w = np.exp(z)
    w /= w.sum(axis=-1, keepdims=True)
    grad = w[..., None] * T
    grad = grad - (lam / (M * N)) * A / slack[..., None, None]
    if entropy:
        grad += entropy * (1.0 + np.log(np.maximum(X, _XEPS)))
    return grad


def batch_barrier_value(X: np.ndarray, p: BatchProblem) -> np.ndarray:
    """Eq. (9) barrier objective of every instance (``+inf`` if infeasible)."""
    return _value(X, p.T, p.A, p.gamma, p.beta, p.lam, p.entropy)


def batch_barrier_gradient(
    X: np.ndarray, p: BatchProblem, slack: np.ndarray | None = None
) -> np.ndarray:
    """∇_X F of every instance.

    ``slack`` overrides the reliability slack used by the barrier term —
    the training loop passes a floored slack so gradients stay finite at
    mildly infeasible iterates (see ``MFCPConfig.slack_floor``).
    """
    if slack is None:
        slack = np.maximum(_slack(X, p.A, p.gamma), _XEPS)
    return _gradient(X, p.T, p.A, slack, p.beta, p.lam, p.entropy)


def batch_reliability_slack(X: np.ndarray, p: BatchProblem) -> np.ndarray:
    """Eq. (4) reliability surplus g(X, A) − γ per instance."""
    return _slack(X, p.A, p.gamma)


def _feasible_start_batch(p: BatchProblem) -> np.ndarray:
    """Per-instance blend of uniform and reliability-greedy assignments
    (the batch analogue of MatchingProblem.feasible_start)."""
    B, M, N = p.B, p.M, p.N
    uniform = np.full((B, M, N), 1.0 / M, dtype=p.T.dtype)
    greedy = np.zeros((B, M, N), dtype=p.T.dtype)
    b_idx = np.repeat(np.arange(B), N)
    n_idx = np.tile(np.arange(N), B)
    greedy[b_idx, p.A.argmax(axis=1).ravel(), n_idx] = 1.0
    s_u = np.einsum("bmn,bmn->b", uniform, p.A) / (M * N) - p.gamma
    s_g = np.einsum("bmn,bmn->b", greedy, p.A) / (M * N) - p.gamma
    if np.any(s_g <= 0):
        raise ValueError("some instances have an unattainable gamma")
    target = 0.25 * s_g
    denom = np.maximum(s_g - s_u, 1e-12)
    alpha_t = (target - s_u) / denom
    alpha_f = (0.0 - s_u) / denom
    alpha = np.clip(np.maximum(alpha_t, alpha_f + 0.25 * (1 - alpha_f)), 0.0, 1 - 1e-6)
    alpha = alpha[:, None, None]
    return (1.0 - alpha) * uniform + alpha * greedy


def solve_relaxed_batch(
    problem: BatchProblem,
    *,
    lr: float = 0.5,
    max_iters: int = 200,
    x0: np.ndarray | None = None,
    halvings: int = 6,
    tol: float = 0.0,
    patience: int = 5,
    adaptive_trials: bool = False,
) -> BatchSolution:
    """Mirror descent on every instance of the batch simultaneously.

    Each iteration proposes steps at ``lr / 2^h`` for h = 0..halvings−1 in
    one fused evaluation (the halving axis rides along the batch axis);
    the largest step whose iterate is feasible and improving wins,
    independently per instance.  An instance that accepts no step — or,
    with ``tol > 0``, improves by less than ``tol`` for ``patience``
    consecutive iterations (the scalar solver's early-stop rule) — is
    frozen: its iterate is final and it is dropped from the active set, so
    the remaining instances' gradient/value work shrinks with it.

    With ``adaptive_trials=True`` each instance remembers its last
    accepted halving level and starts the next line search one level
    above it (step-memory line search) instead of always retrying the
    full ``lr`` step.  Warm-started stacks whose instances sit near their
    optima reject the full step almost every iteration, so this removes
    most trial evaluations — but it no longer matches the scalar solver's
    "largest step first" rule exactly, so it stays off by default and is
    only used for the zeroth-order perturbation stacks, whose estimates
    are stochastic to begin with (see DESIGN.md, batched training path).
    """
    if lr <= 0 or max_iters <= 0 or halvings < 1:
        raise ValueError("lr, max_iters must be > 0 and halvings >= 1")
    if tol < 0 or patience < 1:
        raise ValueError("tol must be >= 0 and patience >= 1")
    X = _feasible_start_batch(problem) if x0 is None else np.array(x0, dtype=problem.T.dtype)
    if X.shape != problem.T.shape:
        raise ValueError(f"x0 must have shape {problem.T.shape}, got {X.shape}")
    B, M, N = problem.B, problem.M, problem.N
    # Repair any infeasible warm starts by swapping in the blend start.
    slack0 = _slack(X, problem.A, problem.gamma)
    if np.any(slack0 <= 0):
        fresh = _feasible_start_batch(problem)
        X = np.where((slack0 <= 0)[:, None, None], fresh, X)

    beta, lam, entropy = problem.beta, problem.lam, problem.entropy
    MN = M * N
    out_X = X.copy()
    loads_a = np.einsum("bmn,bmn->bm", X, problem.T)
    slack_a = np.einsum("bmn,bmn->b", X, problem.A) / MN - problem.gamma
    out_f = _value_from(X, loads_a, slack_a, beta, lam, entropy)
    converged = np.zeros(B, dtype=bool)
    max_it_used = 0
    # Python-float steps: weak scalars under NEP 50, so float32 batches
    # are not silently promoted back to float64 by the cascade.
    steps = [lr / 2.0**h for h in range(halvings)]
    # Per-instance first-trial level for the adaptive policy (dtype of the
    # gathered array matches the batch so the gather does not promote).
    steps_arr = np.asarray(steps, dtype=problem.T.dtype)
    k = np.zeros(B, dtype=np.intp) if adaptive_trials else None

    # Active-set state (compacted copies; `active` maps back to batch slots).
    # loads/slack/logX ride along so the accepted trial's objective pieces
    # are reused for the next iteration's gradient instead of recomputed.
    # Telemetry: hoisted once per solve (one branch when disabled); the
    # per-iteration cascade-level bookkeeping below only runs when enabled.
    rec = get_recorder()
    tele = rec.enabled
    ls_time = 0.0

    active = np.arange(B)
    Xa, fa = X, out_f.copy()
    Ta, Aa, ga = problem.T, problem.A, problem.gamma
    lamAa = (lam / MN) * Aa  # hoisted barrier-gradient constant
    log_a = np.log(np.maximum(X, _XEPS)) if entropy else None
    stall = np.zeros(B, dtype=np.int64)

    def _val(loads: np.ndarray, slack: np.ndarray, ent: np.ndarray | float) -> np.ndarray:
        z = beta * loads
        shift = z.max(axis=-1, keepdims=True)
        lse = (np.log(np.exp(z - shift).sum(axis=-1)) + shift[..., 0]) / beta
        return np.where(slack > 0, lse - lam * np.log(np.maximum(slack, _XEPS)), np.inf) + ent

    for it in range(max_iters):
        if active.size == 0:
            break
        # ∇F from the carried loads/slack (Eq. 9 pieces of the current X).
        z = beta * loads_a
        z -= z.max(axis=-1, keepdims=True)
        w = np.exp(z, out=z)
        w /= w.sum(axis=-1, keepdims=True)
        # Accepted iterates always have slack > 0 (the value is +inf
        # otherwise), so divide directly like the scalar barrier_gradient.
        grad = w[:, :, None] * Ta
        grad -= lamAa / slack_a[:, None, None]
        if entropy:
            grad += entropy * (1.0 + log_a)
        # Normalized steps (see SolverConfig.normalize_steps): bound the
        # multiplicative update per instance regardless of barrier stiffness.
        # They also bound |expo| by lr, so no overflow clamp is needed below.
        scale = np.maximum(np.abs(grad).max(axis=(1, 2)), 1e-9)  # (b,)
        if tele:
            ls_t0 = time.perf_counter()
        # Two-stage trial cascade.  Stage 1: the first-trial step for
        # every instance — the common accept, evaluated on (b, M, N)
        # only.  Cascade mode always opens at the full step; adaptive
        # mode opens at each instance's remembered level.
        neg_s1 = -steps_arr[k] if adaptive_trials else -steps[0]
        expo = (neg_s1 / scale)[:, None, None] * grad
        np.exp(expo, out=expo)
        Z = Xa * expo
        Z /= Z.sum(axis=1, keepdims=True)
        loads_new = np.einsum("bmn,bmn->bm", Z, Ta)
        slack_new = np.einsum("bmn,bmn->b", Z, Aa) / MN - ga
        if entropy:
            Zc = np.maximum(Z, _XEPS)
            log_new = np.log(Zc)
            ent_new = entropy * np.einsum("bmn,bmn->b", Zc, log_new)
        else:
            log_new, ent_new = None, 0.0
        f_new = _val(loads_new, slack_new, ent_new)  # (b,)
        any_ok = f_new <= fa + 1e-12
        lvl = k.copy() if adaptive_trials else None  # accepted level
        # Cascade-mode accepted-level tracking (telemetry only; adaptive
        # mode reuses `lvl`).
        lvl_rec = np.zeros(f_new.size, dtype=np.intp) if tele and lvl is None else None
        if halvings > 1 and not any_ok.all():
            # Stage 2: halve step by step, each round only for the
            # instances still rejecting — the typical rejector accepts the
            # very next halving, so evaluating all H−1 at once wastes most
            # of the cascade's work.  In cascade mode every rejector is at
            # the same level (semantics unchanged: the first, i.e. largest,
            # feasible improving step wins); in adaptive mode each carries
            # its own next level and drops out once it runs past H−1.
            r = np.flatnonzero(~any_ok)
            lvl_r = (k[r] + 1) if adaptive_trials else None
            for h in range(1, halvings):
                if adaptive_trials:
                    alive = lvl_r < halvings
                    if not alive.all():
                        r, lvl_r = r[alive], lvl_r[alive]
                if r.size == 0:
                    break
                neg_s = -steps_arr[lvl_r] if adaptive_trials else -steps[h]
                expo_r = (neg_s / scale[r])[:, None, None] * grad[r]
                np.exp(expo_r, out=expo_r)
                Zr = Xa[r] * expo_r
                Zr /= Zr.sum(axis=1, keepdims=True)
                loads_r = np.einsum("rmn,rmn->rm", Zr, Ta[r])
                slack_r = np.einsum("rmn,rmn->r", Zr, Aa[r]) / MN - ga[r]
                if entropy:
                    Zrc = np.maximum(Zr, _XEPS)
                    log_r = np.log(Zrc)
                    ent_r = entropy * np.einsum("rmn,rmn->r", Zrc, log_r)
                else:
                    log_r, ent_r = None, 0.0
                f_r = _val(loads_r, slack_r, ent_r)
                ok = f_r <= fa[r] + 1e-12
                if ok.any():
                    acc = r[ok]
                    Z[acc] = Zr[ok]
                    f_new[acc] = f_r[ok]
                    loads_new[acc] = loads_r[ok]
                    slack_new[acc] = slack_r[ok]
                    if entropy:
                        log_new[acc] = log_r[ok]
                    any_ok[acc] = True
                    if adaptive_trials:
                        lvl[acc] = lvl_r[ok]
                        lvl_r = lvl_r[~ok]
                    elif lvl_rec is not None:
                        lvl_rec[acc] = h
                    r = r[~ok]
                if adaptive_trials:
                    lvl_r = lvl_r + 1
            rem = np.flatnonzero(~any_ok)
            if rem.size:
                # No trial improved: keep the current iterate (frozen below).
                Z[rem] = Xa[rem]
                f_new[rem] = fa[rem]
                loads_new[rem] = loads_a[rem]
                slack_new[rem] = slack_a[rem]
                if entropy:
                    log_new[rem] = log_a[rem]
        if tele:
            ls_time += time.perf_counter() - ls_t0
            acc_lvls = (lvl if adaptive_trials else lvl_rec)[any_ok]
            if acc_lvls.size:
                for h_lvl, cnt in enumerate(np.bincount(acc_lvls)):
                    if cnt:
                        rec.observe("batch_solve/cascade_level", h_lvl,
                                    n=int(cnt), bounds=LEVEL_BUCKETS)
        if adaptive_trials:
            # Step memory with decrease-on-accept: retry one level larger
            # next iteration so the step size can grow back.
            np.maximum(lvl - 1, 0, out=k, where=any_ok)
        Xa = Z
        max_it_used = it + 1
        if tol > 0:
            # Scalar stall rule: reset on a >= tol improvement, freeze
            # after `patience` consecutive sub-tol iterations.  (Stall
            # values of no-accept instances are irrelevant — they are
            # frozen and dropped below regardless.)
            stall += 1
            stall[fa - f_new >= tol] = 0
            frozen = stall >= patience
            frozen |= ~any_ok
        else:
            frozen = ~any_ok
        loads_a, slack_a, log_a = loads_new, slack_new, log_new
        fa = f_new
        if np.any(frozen):
            done = active[frozen]
            out_X[done] = Xa[frozen]
            out_f[done] = fa[frozen]
            converged[done] = True
            keep = ~frozen
            active, Xa, fa, stall = active[keep], Xa[keep], fa[keep], stall[keep]
            loads_a, slack_a = loads_a[keep], slack_a[keep]
            if entropy:
                log_a = log_a[keep]
            Ta, Aa, ga = problem.T[active], problem.A[active], problem.gamma[active]
            lamAa = lamAa[keep]
            if adaptive_trials:
                k = k[keep]

    if active.size:
        out_X[active] = Xa
        out_f[active] = fa
    if tele:
        rec.counter_add("batch_solve/calls")
        rec.counter_add("batch_solve/instances", B)
        rec.observe("batch_solve/batch_size", B, bounds=SIZE_BUCKETS)
        rec.observe("batch_solve/iterations", max_it_used, bounds=ITER_BUCKETS)
        rec.counter_add("batch_solve/frozen_instances", float(converged.sum()))
        rec.counter_add("batch_solve/line_search_s", ls_time)
    return BatchSolution(
        X=out_X, objective=out_f, iterations=max_it_used, converged=converged
    )
