"""Vectorized batch solver: many matching instances in one NumPy program.

The zeroth-order estimator (Algorithm 2) solves S perturbed copies of the
same instance per gradient estimate.  Solving them one-by-one wastes the
vector units; this module runs mirror descent on a whole *batch* of
instances simultaneously — all arrays carry a leading batch dimension and
every update is a fused elementwise/`einsum` expression, following the
hpc-parallel guidance (vectorize the outer loop, not just the inner one).

Semantics match :func:`repro.matching.relaxed.solve_relaxed` with the
``"mirror"`` projection, with two deliberate simplifications that keep the
batch fully synchronous (no per-instance control flow):

- a *shared* fixed step size with per-instance step halving implemented by
  masked updates instead of an early-exit line search;
- all instances run the same number of iterations (no per-instance early
  stopping); the returned objectives are those of the best iterate seen.

Supported objective: the sequential (convex) makespan barrier — exactly
what the ZO estimator perturbs in the convex benchmarks; the non-convex ζ
case falls back to the scalar path automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatchProblem", "BatchSolution", "solve_relaxed_batch"]


@dataclass(frozen=True)
class BatchProblem:
    """A batch of B same-shape sequential matching instances."""

    T: np.ndarray  # (B, M, N) strictly positive
    A: np.ndarray  # (B, M, N) in [0, 1]
    gamma: np.ndarray  # (B,)
    beta: float = 5.0
    lam: float = 0.01
    entropy: float = 0.0

    def __post_init__(self) -> None:
        T = np.asarray(self.T, dtype=np.float64)
        A = np.asarray(self.A, dtype=np.float64)
        g = np.atleast_1d(np.asarray(self.gamma, dtype=np.float64))
        if T.ndim != 3 or A.shape != T.shape:
            raise ValueError("T and A must be (B, M, N) arrays of equal shape")
        if g.shape != (T.shape[0],):
            raise ValueError(f"gamma must have shape ({T.shape[0]},), got {g.shape}")
        if np.any(T <= 0):
            raise ValueError("execution times must be strictly positive")
        if np.any((A < 0) | (A > 1)):
            raise ValueError("reliabilities must lie in [0, 1]")
        if self.beta <= 0 or self.lam <= 0 or self.entropy < 0:
            raise ValueError("beta, lam must be > 0 and entropy >= 0")
        object.__setattr__(self, "T", T)
        object.__setattr__(self, "A", A)
        object.__setattr__(self, "gamma", g)

    @property
    def B(self) -> int:
        return self.T.shape[0]

    @property
    def M(self) -> int:
        return self.T.shape[1]

    @property
    def N(self) -> int:
        return self.T.shape[2]


@dataclass(frozen=True)
class BatchSolution:
    """Best iterates of the batch solve."""

    X: np.ndarray  # (B, M, N)
    objective: np.ndarray  # (B,)
    iterations: int


_XEPS = 1e-12


def _batch_value(X: np.ndarray, p: BatchProblem) -> np.ndarray:
    """Barrier objective per instance; +inf where infeasible."""
    loads = np.einsum("bmn,bmn->bm", X, p.T)
    z = p.beta * loads
    shift = z.max(axis=1, keepdims=True)
    lse = (np.log(np.exp(z - shift).sum(axis=1)) + shift[:, 0]) / p.beta
    slack = np.einsum("bmn,bmn->b", X, p.A) / (p.M * p.N) - p.gamma
    out = np.where(slack > 0, lse - p.lam * np.log(np.maximum(slack, _XEPS)), np.inf)
    if p.entropy:
        Xc = np.maximum(X, _XEPS)
        out = out + p.entropy * np.sum(Xc * np.log(Xc), axis=(1, 2))
    return out


def _batch_gradient(X: np.ndarray, p: BatchProblem, slack: np.ndarray) -> np.ndarray:
    loads = np.einsum("bmn,bmn->bm", X, p.T)
    z = p.beta * loads
    z -= z.max(axis=1, keepdims=True)
    w = np.exp(z)
    w /= w.sum(axis=1, keepdims=True)
    grad = w[:, :, None] * p.T
    grad -= (p.lam / (p.M * p.N)) * p.A / slack[:, None, None]
    if p.entropy:
        grad += p.entropy * (1.0 + np.log(np.maximum(X, _XEPS)))
    return grad


def _feasible_start_batch(p: BatchProblem) -> np.ndarray:
    """Per-instance blend of uniform and reliability-greedy assignments
    (the batch analogue of MatchingProblem.feasible_start)."""
    B, M, N = p.B, p.M, p.N
    uniform = np.full((B, M, N), 1.0 / M)
    greedy = np.zeros((B, M, N))
    b_idx = np.repeat(np.arange(B), N)
    n_idx = np.tile(np.arange(N), B)
    greedy[b_idx, p.A.argmax(axis=1).ravel(), n_idx] = 1.0
    s_u = np.einsum("bmn,bmn->b", uniform, p.A) / (M * N) - p.gamma
    s_g = np.einsum("bmn,bmn->b", greedy, p.A) / (M * N) - p.gamma
    if np.any(s_g <= 0):
        raise ValueError("some instances have an unattainable gamma")
    target = 0.25 * s_g
    denom = np.maximum(s_g - s_u, 1e-12)
    alpha_t = (target - s_u) / denom
    alpha_f = (0.0 - s_u) / denom
    alpha = np.clip(np.maximum(alpha_t, alpha_f + 0.25 * (1 - alpha_f)), 0.0, 1 - 1e-6)
    alpha = alpha[:, None, None]
    return (1.0 - alpha) * uniform + alpha * greedy


def solve_relaxed_batch(
    problem: BatchProblem,
    *,
    lr: float = 0.5,
    max_iters: int = 200,
    x0: np.ndarray | None = None,
    halvings: int = 6,
) -> BatchSolution:
    """Mirror descent on every instance of the batch simultaneously.

    Each iteration proposes steps at ``lr / 2^h`` for h = 0..halvings−1 in
    a *vectorized* trial cascade: the largest step whose iterate is
    feasible and improving wins, independently per instance; instances with
    no accepted step keep their current iterate (they have effectively
    converged).
    """
    if lr <= 0 or max_iters <= 0 or halvings < 1:
        raise ValueError("lr, max_iters must be > 0 and halvings >= 1")
    X = _feasible_start_batch(problem) if x0 is None else np.array(x0, dtype=np.float64)
    if X.shape != problem.T.shape:
        raise ValueError(f"x0 must have shape {problem.T.shape}, got {X.shape}")
    # Repair any infeasible warm starts by swapping in the blend start.
    slack0 = np.einsum("bmn,bmn->b", X, problem.A) / (problem.M * problem.N) - problem.gamma
    if np.any(slack0 <= 0):
        fresh = _feasible_start_batch(problem)
        X = np.where((slack0 <= 0)[:, None, None], fresh, X)

    f_cur = _batch_value(X, problem)
    best_X, best_f = X.copy(), f_cur.copy()
    steps = lr / (2.0 ** np.arange(halvings))  # (H,)
    for it in range(max_iters):
        slack = (
            np.einsum("bmn,bmn->b", X, problem.A) / (problem.M * problem.N)
            - problem.gamma
        )
        grad = _batch_gradient(X, problem, np.maximum(slack, _XEPS))
        # Normalized steps (see SolverConfig.normalize_steps): bound the
        # multiplicative update per instance regardless of barrier stiffness.
        scale = np.maximum(np.abs(grad).max(axis=(1, 2)), 1e-9)  # (B,)
        expo = -(steps[:, None, None, None] / scale[None, :, None, None]) * grad[None]
        Z = X[None] * np.exp(np.clip(expo, -50.0, 50.0))
        Z /= Z.sum(axis=2, keepdims=True)
        f_trial = np.stack([_batch_value(Z[h], problem) for h in range(len(steps))])
        improving = f_trial <= f_cur[None] + 1e-12  # (H, B)
        any_ok = improving.any(axis=0)
        first_ok = np.argmax(improving, axis=0)  # first (largest) ok step
        chosen = Z[first_ok, np.arange(problem.B)]
        f_chosen = f_trial[first_ok, np.arange(problem.B)]
        X = np.where(any_ok[:, None, None], chosen, X)
        f_cur = np.where(any_ok, f_chosen, f_cur)
        better = f_cur < best_f
        if np.any(better):
            best_X[better] = X[better]
            best_f = np.minimum(best_f, f_cur)
        if not np.any(any_ok):
            return BatchSolution(X=best_X, objective=best_f, iterations=it + 1)
    return BatchSolution(X=best_X, objective=best_f, iterations=max_iters)
