"""Analytical differentiation of the optimal matching via KKT conditions.

Implements Eq. (13)–(15) of the paper (the Donti et al. / OptNet route) for
the convex sequential objective: at the relaxed optimum ``X*`` of

    min_X F(X, T, A)   s.t.  Σ_i x_i = 1_N,

the stationarity + primal feasibility system

    Φ(X, ν) = [ ∇_X F + Dᵀν ;  D vec(X) − 1_N ] = 0

implicitly defines ``X*(T, A)``.  Totally differentiating (paper Eq. 15,
with the box-constraint multiplier blocks dropped — the paper itself
"disregards the constraints on the range of X", which is sound because the
mirror-descent iterates stay strictly inside the box) gives

    [ H  Dᵀ ] [dX]    [ ∇²_XT F · dT + ∇²_XA F · dA ]
    [ D  0  ] [dν]  = −[ 0 ]

where ``D`` is the per-task equality Jacobian.  Training only needs the
vector–Jacobian product ``(∂X*/∂T)ᵀ ḡ`` for an upstream gradient ``ḡ =
dL/dX*``; since the KKT matrix is symmetric we solve one adjoint system

    [ H  Dᵀ ] [u]   [ ḡ ]
    [ D  0  ] [w] = [ 0 ]

and read off ``dL/dT = −C_Tᵀ u`` and ``dL/dA = −C_Aᵀ u``.

The Hessian ``H`` of the barrier objective is positive semidefinite but can
be singular (log-sum-exp has flat directions); a small Tikhonov term keeps
the saddle system well-posed — standard interior-point practice.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.matching.objectives import barrier_second_derivatives
from repro.matching.problem import MatchingProblem

__all__ = ["KKTGradients", "kkt_vjp", "kkt_jacobians"]


@dataclass(frozen=True)
class KKTGradients:
    """Upstream gradients mapped through the argmin: dL/dT and dL/dA."""

    dT: np.ndarray  # shape (M, N)
    dA: np.ndarray  # shape (M, N)


def _equality_jacobian(m: int, n: int) -> np.ndarray:
    """D ∈ R^{N×MN}: row j selects x_{ij} over all clusters i (row-major vec)."""
    D = np.zeros((n, m * n))
    for i in range(m):
        D[np.arange(n), i * n + np.arange(n)] = 1.0
    return D


def _solve_saddle(
    H: np.ndarray, D: np.ndarray, rhs_top: np.ndarray, ridge: float
) -> np.ndarray:
    """Solve the symmetric saddle system for the top block ``u``."""
    p, n = H.shape[0], D.shape[0]
    K = np.zeros((p + n, p + n))
    K[:p, :p] = H + ridge * np.eye(p)
    K[:p, p:] = D.T
    K[p:, :p] = D
    rhs = np.concatenate([rhs_top, np.zeros(n)])
    try:
        with warnings.catch_warnings():
            # Near-boundary optima make H stiff; the lstsq fallback handles
            # genuinely singular systems, so the warning is just noise.
            warnings.simplefilter("ignore", scipy.linalg.LinAlgWarning)
            sol = scipy.linalg.solve(K, rhs, assume_a="sym")
    except scipy.linalg.LinAlgError:
        sol, *_ = np.linalg.lstsq(K, rhs, rcond=None)
    return sol[:p]


def kkt_vjp(
    X_star: np.ndarray,
    problem: MatchingProblem,
    grad_X: np.ndarray,
    *,
    ridge: float = 1e-8,
) -> KKTGradients:
    """Vector–Jacobian product through the argmin (the MFCP-AD backward).

    Parameters
    ----------
    X_star:
        Relaxed optimal matching at the *predicted* matrices.
    problem:
        The instance whose ``T``/``A`` are the prediction matrices
        ``T̂``/``Â`` (differentiation happens w.r.t. these).
    grad_X:
        Upstream gradient ``dL/dX*`` (M×N).
    ridge:
        Tikhonov regularization on H for numerical stability.

    Returns
    -------
    KKTGradients with ``dL/dT̂`` and ``dL/dÂ`` (each M×N).
    """
    M, N = problem.M, problem.N
    if X_star.shape != (M, N) or grad_X.shape != (M, N):
        raise ValueError("X_star and grad_X must have shape (M, N)")
    deriv = barrier_second_derivatives(X_star, problem)
    D = _equality_jacobian(M, N)
    u = _solve_saddle(deriv.H, D, grad_X.ravel(), ridge)
    dT = -(deriv.C_T.T @ u).reshape(M, N)
    dA = -(deriv.C_A.T @ u).reshape(M, N)
    return KKTGradients(dT=dT, dA=dA)


def kkt_jacobians(
    X_star: np.ndarray,
    problem: MatchingProblem,
    *,
    ridge: float = 1e-8,
) -> tuple[np.ndarray, np.ndarray]:
    """Full Jacobians ``∂vec(X*)/∂vec(T)`` and ``∂vec(X*)/∂vec(A)``.

    O((MN)³) — used by tests and the gradient-quality ablation, not by the
    training loop (which uses :func:`kkt_vjp`).
    """
    M, N = problem.M, problem.N
    P = M * N
    deriv = barrier_second_derivatives(X_star, problem)
    D = _equality_jacobian(M, N)
    K = np.zeros((P + N, P + N))
    K[:P, :P] = deriv.H + ridge * np.eye(P)
    K[:P, P:] = D.T
    K[P:, :P] = D
    rhs = np.zeros((P + N, 2 * P))
    rhs[:P, :P] = -deriv.C_T
    rhs[:P, P:] = -deriv.C_A
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", scipy.linalg.LinAlgWarning)
            sol = scipy.linalg.solve(K, rhs, assume_a="sym")
    except scipy.linalg.LinAlgError:
        sol, *_ = np.linalg.lstsq(K, rhs, rcond=None)
    return sol[:P, :P], sol[:P, P:]
