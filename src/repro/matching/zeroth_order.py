"""Algorithm 2's zeroth-order (forward) gradient estimator.

For the non-convex parallel objective no usable KKT system exists, so the
paper estimates the Jacobian of the argmin by Gaussian smoothing: perturb
the predicted vectors of *one* cluster ``i`` along directions ``v ~ N(0,I)``,
re-solve the matching, and average directional differences

    ∇ₛ X* ≈ (X*(t̂ᵢ + Δ v) − X*(t̂ᵢ)) / Δ · v       (lines 9–10)

Training needs only the vector–Jacobian product with the upstream regret
gradient ``ḡ = dL/dX*``; contracting first keeps the estimator cheap:

    dL/dt̂ᵢ ≈ (1/S) Σₛ ⟨(X*ₚ − X*)/Δ, ḡ⟩ · vₛ

Perturbed solves are warm-started from the base solution — a small
perturbation moves the optimum slightly, so a handful of iterations
suffices (this is what makes S-sample estimation affordable; Eq. 21's
K₂ ≪ K₁).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.problem import MatchingProblem
from repro.matching.relaxed import RelaxedSolution, SolverConfig, solve_relaxed
from repro.utils.rng import as_generator

__all__ = ["ZeroOrderConfig", "ZeroOrderGradients", "zo_vjp", "optimal_perturbation"]


@dataclass(frozen=True)
class ZeroOrderConfig:
    """Hyperparameters of the forward-gradient estimator (Alg. 2 inputs)."""

    samples: int = 8  # S
    delta: float = 0.05  # Δ
    warm_start_iters: int = 60  # K₂: iterations for each perturbed solve
    antithetic: bool = True  # pair +v/−v draws (variance reduction)
    #: Solve all perturbed instances simultaneously via the vectorized
    #: batch solver (convex sequential objective only; the non-convex ζ
    #: case automatically falls back to the scalar path).
    vectorized: bool = False

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError(f"samples must be > 0, got {self.samples}")
        if self.delta <= 0:
            raise ValueError(f"delta must be > 0, got {self.delta}")
        if self.warm_start_iters <= 0:
            raise ValueError("warm_start_iters must be > 0")


@dataclass(frozen=True)
class ZeroOrderGradients:
    """Estimated dL/dt̂ᵢ and dL/dâᵢ for the perturbed cluster."""

    dt: np.ndarray  # shape (N,)
    da: np.ndarray  # shape (N,)
    solves: int  # number of inner matching solves performed


def optimal_perturbation(sigma_f: float, beta_smooth: float, samples: int) -> float:
    """The paper's Δ* = (2σ_F² / (β² S))^{1/4} balancing bias and variance
    (discussion after Theorem 3)."""
    if sigma_f <= 0 or beta_smooth <= 0 or samples <= 0:
        raise ValueError("sigma_f, beta_smooth and samples must be positive")
    return float((2.0 * sigma_f**2 / (beta_smooth**2 * samples)) ** 0.25)


def zo_vjp(
    base_problem: MatchingProblem,
    base_solution: RelaxedSolution,
    cluster: int,
    grad_X: np.ndarray,
    config: ZeroOrderConfig | None = None,
    *,
    solver_config: SolverConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> ZeroOrderGradients:
    """Estimate ``dL/dt̂ᵢ`` and ``dL/dâᵢ`` by Algorithm 2 (lines 5–11).

    Parameters
    ----------
    base_problem:
        Instance built from the prediction matrices (T̂, Â).
    base_solution:
        Relaxed solution X*(T̂, Â) already computed by the caller (line 4).
    cluster:
        Index ``i`` of the cluster whose predictions are perturbed.
    grad_X:
        Upstream regret gradient dL/dX* (M×N).
    """
    cfg = config or ZeroOrderConfig()
    rng = as_generator(rng)
    M, N = base_problem.M, base_problem.N
    if not 0 <= cluster < M:
        raise ValueError(f"cluster index {cluster} out of range [0, {M})")
    if grad_X.shape != (M, N):
        raise ValueError(f"grad_X must have shape {(M, N)}")
    if cfg.vectorized and not base_problem.is_parallel:
        return _zo_vjp_batched(base_problem, base_solution, cluster, grad_X, cfg, rng)

    warm_cfg = SolverConfig(
        lr=(solver_config or SolverConfig()).lr,
        max_iters=cfg.warm_start_iters,
        tol=(solver_config or SolverConfig()).tol,
        projection=(solver_config or SolverConfig()).projection,
    )

    X_base = base_solution.X
    g_flat = grad_X.ravel()
    base_contract = float(X_base.ravel() @ g_flat)

    T_hat = np.array(base_problem.T)
    A_hat = np.array(base_problem.A)

    dt = np.zeros(N)
    da = np.zeros(N)
    solves = 0

    # Draw directions; antithetic pairs share one |v| draw.
    n_draws = cfg.samples // 2 if cfg.antithetic else cfg.samples
    n_draws = max(n_draws, 1)
    directions = rng.normal(size=(n_draws, 2, N))  # [:, 0]=v_t, [:, 1]=v_a
    signs = (1.0, -1.0) if cfg.antithetic else (1.0,)

    for s in range(n_draws):
        v_t, v_a = directions[s, 0], directions[s, 1]
        for sign in signs:
            # Perturb the time predictions of cluster i (line 7, T branch).
            T_pert = T_hat.copy()
            T_pert[cluster] = np.maximum(T_hat[cluster] + sign * cfg.delta * v_t, 1e-4)
            sol_t = solve_relaxed(
                base_problem.with_predictions(T_pert, A_hat), warm_cfg, x0=X_base
            )
            solves += 1
            diff_t = (float(sol_t.X.ravel() @ g_flat) - base_contract) / (sign * cfg.delta)
            dt += diff_t * v_t

            # Perturb the reliability predictions (line 7, A branch).
            A_pert = A_hat.copy()
            A_pert[cluster] = np.clip(A_hat[cluster] + sign * cfg.delta * v_a, 0.0, 1.0)
            pert_problem = base_problem.with_predictions(T_hat, A_pert)
            if pert_problem.is_strictly_feasible(X_base):
                sol_a = solve_relaxed(pert_problem, warm_cfg, x0=X_base)
                solves += 1
                diff_a = (float(sol_a.X.ravel() @ g_flat) - base_contract) / (sign * cfg.delta)
                da += diff_a * v_a
            # else: the perturbation made the warm start infeasible — skip
            # the sample (contributes zero), keeping the estimator defined.

    total = n_draws * len(signs)
    return ZeroOrderGradients(dt=dt / total, da=da / total, solves=solves)


def _zo_vjp_batched(
    base_problem: MatchingProblem,
    base_solution: RelaxedSolution,
    cluster: int,
    grad_X: np.ndarray,
    cfg: ZeroOrderConfig,
    rng: np.random.Generator,
) -> ZeroOrderGradients:
    """Vectorized Algorithm 2: all perturbed instances solved in one batch.

    Builds 2·S perturbed copies (S time-perturbations, S reliability-
    perturbations; antithetic pairs count within S) of the base instance
    and dispatches them to :func:`repro.matching.batch.solve_relaxed_batch`
    warm-started from the base solution.  Statistically equivalent to the
    scalar path; typically 3-6x faster on the training hot loop.
    """
    from repro.matching.batch import BatchProblem, solve_relaxed_batch

    M, N = base_problem.M, base_problem.N
    T_hat = np.array(base_problem.T)
    A_hat = np.array(base_problem.A)
    g_flat = grad_X.ravel()
    base_contract = float(base_solution.X.ravel() @ g_flat)

    n_draws = max(cfg.samples // 2 if cfg.antithetic else cfg.samples, 1)
    signs = (1.0, -1.0) if cfg.antithetic else (1.0,)
    directions = rng.normal(size=(n_draws, 2, N))

    # Assemble the batch: first all T-perturbations, then all A-perturbations.
    T_batch, A_batch, meta = [], [], []  # meta: (kind, draw index, sign)
    for s in range(n_draws):
        v_t, v_a = directions[s, 0], directions[s, 1]
        for sign in signs:
            T_pert = T_hat.copy()
            T_pert[cluster] = np.maximum(T_hat[cluster] + sign * cfg.delta * v_t, 1e-4)
            T_batch.append(T_pert)
            A_batch.append(A_hat)
            meta.append(("t", s, sign))
            A_pert = A_hat.copy()
            A_pert[cluster] = np.clip(A_hat[cluster] + sign * cfg.delta * v_a, 0.0, 1.0)
            T_batch.append(T_hat)
            A_batch.append(A_pert)
            meta.append(("a", s, sign))

    B = len(meta)
    A_arr = np.stack(A_batch)
    # Per-instance γ clamp, mirroring MatchingProblem.with_predictions: a
    # downward reliability perturbation must not make the barrier's
    # interior empty (the scalar path gets this clamp for free).
    best_val = A_arr.max(axis=1).mean(axis=1) / M
    uniform_val = A_arr.mean(axis=(1, 2)) / M
    attainable = best_val - 0.05 * np.maximum(best_val - uniform_val, 1e-5)
    gammas = np.minimum(base_problem.gamma, attainable)
    batch = BatchProblem(
        T=np.stack(T_batch),
        A=A_arr,
        gamma=gammas,
        beta=base_problem.beta,
        lam=base_problem.lam,
        entropy=base_problem.entropy,
    )
    x0 = np.broadcast_to(base_solution.X, (B, M, N)).copy()
    sol = solve_relaxed_batch(batch, max_iters=cfg.warm_start_iters, x0=x0)

    dt = np.zeros(N)
    da = np.zeros(N)
    contracts = sol.X.reshape(B, -1) @ g_flat
    for (kind, s, sign), contract in zip(meta, contracts):
        diff = (float(contract) - base_contract) / (sign * cfg.delta)
        if kind == "t":
            dt += diff * directions[s, 0]
        else:
            da += diff * directions[s, 1]
    total = n_draws * len(signs)
    return ZeroOrderGradients(dt=dt / total, da=da / total, solves=B)
