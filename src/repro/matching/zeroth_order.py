"""Algorithm 2's zeroth-order (forward) gradient estimator.

For the non-convex parallel objective no usable KKT system exists, so the
paper estimates the Jacobian of the argmin by Gaussian smoothing: perturb
the predicted vectors of *one* cluster ``i`` along directions ``v ~ N(0,I)``,
re-solve the matching, and average directional differences

    ∇ₛ X* ≈ (X*(t̂ᵢ + Δ v) − X*(t̂ᵢ)) / Δ · v       (lines 9–10)

Training needs only the vector–Jacobian product with the upstream regret
gradient ``ḡ = dL/dX*``; contracting first keeps the estimator cheap:

    dL/dt̂ᵢ ≈ (1/S) Σₛ ⟨(X*ₚ − X*)/Δ, ḡ⟩ · vₛ

Perturbed solves are warm-started from the base solution — a small
perturbation moves the optimum slightly, so a handful of iterations
suffices (this is what makes S-sample estimation affordable; Eq. 21's
K₂ ≪ K₁).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.matching.batch import (
    BatchProblem,
    clamp_predictions_batch,
    solve_relaxed_batch,
)
from repro.matching.problem import MatchingProblem
from repro.matching.relaxed import RelaxedSolution, SolverConfig, solve_relaxed
from repro.telemetry import SIZE_BUCKETS, VARIANCE_BUCKETS, get_recorder
from repro.utils.rng import as_generator

__all__ = [
    "ZeroOrderConfig",
    "ZeroOrderGradients",
    "CrossZeroOrderGradients",
    "zo_vjp",
    "zo_vjp_cross",
    "optimal_perturbation",
]


@dataclass(frozen=True)
class ZeroOrderConfig:
    """Hyperparameters of the forward-gradient estimator (Alg. 2 inputs)."""

    samples: int = 8  # S
    delta: float = 0.05  # Δ
    warm_start_iters: int = 60  # K₂: iterations for each perturbed solve
    antithetic: bool = True  # pair +v/−v draws (variance reduction)
    #: Solve all perturbed instances simultaneously via the vectorized
    #: batch solver (convex sequential objective only; the non-convex ζ
    #: case automatically falls back to the scalar path).
    vectorized: bool = False
    #: Precision of the fused cross-cluster perturbation stack
    #: (:func:`zo_vjp_cross` only).  float32 halves the memory traffic of
    #: the K·2S simultaneous solves — the estimator's O(Δ) smoothing bias
    #: dwarfs the extra rounding noise (asserted in the tests).  Set
    #: ``np.float64`` for full-precision perturbed solves.
    cross_dtype: type = np.float32
    #: Early-stop tolerance for the fused perturbation stack
    #: (:func:`zo_vjp_cross` only; the effective tolerance is
    #: ``max(solver tol, inner_tol)``).  The perturbed optima only feed a
    #: finite difference at scale Δ, so iterating a warm-started solve
    #: past per-step improvements of ~1e−5 buys no estimator accuracy —
    #: like ``warm_start_iters``, this bounds inner-solve effort.  Set to
    #: 0 to inherit the solver's own tolerance.
    inner_tol: float = 1e-5

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError(f"samples must be > 0, got {self.samples}")
        if self.delta <= 0:
            raise ValueError(f"delta must be > 0, got {self.delta}")
        if self.warm_start_iters <= 0:
            raise ValueError("warm_start_iters must be > 0")
        if self.cross_dtype not in (np.float32, np.float64):
            raise ValueError("cross_dtype must be np.float32 or np.float64")
        if self.inner_tol < 0:
            raise ValueError(f"inner_tol must be >= 0, got {self.inner_tol}")


@dataclass(frozen=True)
class ZeroOrderGradients:
    """Estimated dL/dt̂ᵢ and dL/dâᵢ for the perturbed cluster."""

    dt: np.ndarray  # shape (N,)
    da: np.ndarray  # shape (N,)
    solves: int  # number of inner matching solves performed


def optimal_perturbation(sigma_f: float, beta_smooth: float, samples: int) -> float:
    """The paper's Δ* = (2σ_F² / (β² S))^{1/4} balancing bias and variance
    (discussion after Theorem 3)."""
    if sigma_f <= 0 or beta_smooth <= 0 or samples <= 0:
        raise ValueError("sigma_f, beta_smooth and samples must be positive")
    return float((2.0 * sigma_f**2 / (beta_smooth**2 * samples)) ** 0.25)


def zo_vjp(
    base_problem: MatchingProblem,
    base_solution: RelaxedSolution,
    cluster: int,
    grad_X: np.ndarray,
    config: ZeroOrderConfig | None = None,
    *,
    solver_config: SolverConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> ZeroOrderGradients:
    """Estimate ``dL/dt̂ᵢ`` and ``dL/dâᵢ`` by Algorithm 2 (lines 5–11).

    Parameters
    ----------
    base_problem:
        Instance built from the prediction matrices (T̂, Â).
    base_solution:
        Relaxed solution X*(T̂, Â) already computed by the caller (line 4).
    cluster:
        Index ``i`` of the cluster whose predictions are perturbed.
    grad_X:
        Upstream regret gradient dL/dX* (M×N).
    """
    cfg = config or ZeroOrderConfig()
    rng = as_generator(rng)
    M, N = base_problem.M, base_problem.N
    if not 0 <= cluster < M:
        raise ValueError(f"cluster index {cluster} out of range [0, {M})")
    if grad_X.shape != (M, N):
        raise ValueError(f"grad_X must have shape {(M, N)}")
    if cfg.vectorized and not base_problem.is_parallel:
        return _zo_vjp_batched(base_problem, base_solution, cluster, grad_X, cfg, rng)

    # Inherit *all* solver fields (normalize_steps, backtrack, patience, …)
    # and only shorten the iteration budget for the warm-started re-solves.
    warm_cfg = replace(solver_config or SolverConfig(), max_iters=cfg.warm_start_iters)

    X_base = base_solution.X
    g_flat = grad_X.ravel()
    base_contract = float(X_base.ravel() @ g_flat)

    T_hat = np.array(base_problem.T)
    A_hat = np.array(base_problem.A)

    dt = np.zeros(N)
    da = np.zeros(N)
    solves = 0
    rec = get_recorder()
    tele = rec.enabled
    diffs_t: list[float] = []
    diffs_a: list[float] = []

    # Draw directions; antithetic pairs share one |v| draw.
    n_draws = cfg.samples // 2 if cfg.antithetic else cfg.samples
    n_draws = max(n_draws, 1)
    directions = rng.normal(size=(n_draws, 2, N))  # [:, 0]=v_t, [:, 1]=v_a
    signs = (1.0, -1.0) if cfg.antithetic else (1.0,)

    for s in range(n_draws):
        v_t, v_a = directions[s, 0], directions[s, 1]
        for sign in signs:
            # Perturb the time predictions of cluster i (line 7, T branch).
            T_pert = T_hat.copy()
            T_pert[cluster] = np.maximum(T_hat[cluster] + sign * cfg.delta * v_t, 1e-4)
            sol_t = solve_relaxed(
                base_problem.with_predictions(T_pert, A_hat), warm_cfg, x0=X_base
            )
            solves += 1
            diff_t = (float(sol_t.X.ravel() @ g_flat) - base_contract) / (sign * cfg.delta)
            dt += diff_t * v_t
            if tele:
                diffs_t.append(diff_t)

            # Perturb the reliability predictions (line 7, A branch).
            A_pert = A_hat.copy()
            A_pert[cluster] = np.clip(A_hat[cluster] + sign * cfg.delta * v_a, 0.0, 1.0)
            pert_problem = base_problem.with_predictions(T_hat, A_pert)
            if pert_problem.is_strictly_feasible(X_base):
                sol_a = solve_relaxed(pert_problem, warm_cfg, x0=X_base)
                solves += 1
                diff_a = (float(sol_a.X.ravel() @ g_flat) - base_contract) / (sign * cfg.delta)
                da += diff_a * v_a
                if tele:
                    diffs_a.append(diff_a)
            # else: the perturbation made the warm start infeasible — skip
            # the sample (contributes zero), keeping the estimator defined.

    total = n_draws * len(signs)
    if tele:
        _record_estimate(rec, solves, total,
                         np.asarray(diffs_t), np.asarray(diffs_a))
    return ZeroOrderGradients(dt=dt / total, da=da / total, solves=solves)


def _record_estimate(
    rec, solves: int, batch: int, diffs_t: np.ndarray, diffs_a: np.ndarray,
    n_estimates: int = 1,
) -> None:
    """Telemetry of a zeroth-order estimate: inner-solve counts, the
    perturbation batch size dispatched, and the sample variance of the
    directional differences (the quantity Theorem 3's Δ* balances against
    the smoothing bias — high values flag noisy gradients)."""
    rec.counter_add("zo/estimates", n_estimates)
    rec.counter_add("zo/solves", solves)
    rec.observe("zo/perturbation_batch", batch, bounds=SIZE_BUCKETS)
    if diffs_t.size > 1:
        rec.observe("zo/sample_var_t", float(diffs_t.var()), bounds=VARIANCE_BUCKETS)
    if diffs_a.size > 1:
        rec.observe("zo/sample_var_a", float(diffs_a.var()), bounds=VARIANCE_BUCKETS)


def _zo_vjp_batched(
    base_problem: MatchingProblem,
    base_solution: RelaxedSolution,
    cluster: int,
    grad_X: np.ndarray,
    cfg: ZeroOrderConfig,
    rng: np.random.Generator,
) -> ZeroOrderGradients:
    """Vectorized Algorithm 2: all perturbed instances solved in one batch.

    Builds 2·S perturbed copies (S time-perturbations, S reliability-
    perturbations; antithetic pairs count within S) of the base instance
    and dispatches them to :func:`repro.matching.batch.solve_relaxed_batch`
    warm-started from the base solution.  Statistically equivalent to the
    scalar path; typically 3-6x faster on the training hot loop.
    """
    M, N = base_problem.M, base_problem.N
    T_hat = np.array(base_problem.T)
    A_hat = np.array(base_problem.A)
    g_flat = grad_X.ravel()
    base_contract = float(base_solution.X.ravel() @ g_flat)

    n_draws = max(cfg.samples // 2 if cfg.antithetic else cfg.samples, 1)
    signs = np.array((1.0, -1.0) if cfg.antithetic else (1.0,))
    G = signs.size
    directions = rng.normal(size=(n_draws, 2, N))
    v_t, v_a = directions[:, 0], directions[:, 1]  # (n_draws, N)

    # Assemble the batch with one broadcasted allocation per matrix stack and
    # fancy-indexed row writes; layout (draw, sign, kind) with kind 0 = time-
    # perturbed, 1 = reliability-perturbed.
    shape = (n_draws, G, 2, M, N)
    T_batch = np.broadcast_to(T_hat, shape).copy()
    A_batch = np.broadcast_to(A_hat, shape).copy()
    T_batch[:, :, 0, cluster, :] = T_hat[cluster] + (
        cfg.delta * signs[None, :, None] * v_t[:, None, :]
    )
    A_batch[:, :, 1, cluster, :] = A_hat[cluster] + (
        cfg.delta * signs[None, :, None] * v_a[:, None, :]
    )
    B = n_draws * G * 2
    # clamp_predictions_batch floors the perturbed times, clips the perturbed
    # reliabilities and re-clamps γ per instance, exactly as the scalar path's
    # with_predictions does for each perturbed problem.
    T_arr, A_arr, gammas = clamp_predictions_batch(
        T_batch.reshape(B, M, N), A_batch.reshape(B, M, N), base_problem.gamma
    )
    batch = BatchProblem(
        T=T_arr,
        A=A_arr,
        gamma=gammas,
        beta=base_problem.beta,
        lam=base_problem.lam,
        entropy=base_problem.entropy,
    )
    x0 = np.broadcast_to(base_solution.X, (B, M, N)).copy()
    sol = solve_relaxed_batch(batch, max_iters=cfg.warm_start_iters, x0=x0)

    contracts = (sol.X.reshape(B, -1) @ g_flat).reshape(n_draws, G, 2)
    diffs = (contracts - base_contract) / (cfg.delta * signs[None, :, None])
    dt = np.einsum("dg,dn->n", diffs[:, :, 0], v_t)
    da = np.einsum("dg,dn->n", diffs[:, :, 1], v_a)
    total = n_draws * G
    rec = get_recorder()
    if rec.enabled:
        _record_estimate(rec, B, B, diffs[:, :, 0].ravel(), diffs[:, :, 1].ravel())
    return ZeroOrderGradients(dt=dt / total, da=da / total, solves=B)


@dataclass(frozen=True)
class CrossZeroOrderGradients:
    """Estimated dL/dt̂ and dL/dâ for every perturbed instance of a fused
    cross-cluster batch (row k belongs to instance k's perturbed cluster)."""

    dt: np.ndarray  # shape (K, N)
    da: np.ndarray  # shape (K, N)
    solves: int  # perturbed matching solves performed (all in one batch)


def zo_vjp_cross(
    batch: BatchProblem,
    X_base: np.ndarray,
    clusters: np.ndarray,
    grad_X: np.ndarray,
    config: ZeroOrderConfig | None = None,
    *,
    solver_config: SolverConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> CrossZeroOrderGradients:
    """Cross-cluster fused Algorithm 2: K instances × 2S perturbations in
    ONE batched solve.

    MFCP's training round runs one zeroth-order estimate per cluster; the
    per-cluster estimates are independent, so their K·2S perturbed solves
    are fused into a single :func:`solve_relaxed_batch` call instead of K
    separate batches — one mirror-descent program over K·2S instances.

    Parameters
    ----------
    batch:
        :class:`repro.matching.batch.BatchProblem` holding the K base
        (semi-predicted) instances, already clamped.
    X_base:
        Relaxed solutions of the base instances, shape (K, M, N).
    clusters:
        Perturbed cluster row per instance, shape (K,).
    grad_X:
        Upstream regret gradients ``dL/dX*`` per instance, shape (K, M, N).
    """
    cfg = config or ZeroOrderConfig()
    rng = as_generator(rng)
    scfg = solver_config or SolverConfig()
    K, M, N = batch.B, batch.M, batch.N
    clusters = np.asarray(clusters, dtype=np.int64)
    if clusters.shape != (K,) or np.any((clusters < 0) | (clusters >= M)):
        raise ValueError(f"clusters must be (K,) indices into [0, {M})")
    if X_base.shape != (K, M, N) or grad_X.shape != (K, M, N):
        raise ValueError(f"X_base and grad_X must have shape {(K, M, N)}")

    n_draws = max(cfg.samples // 2 if cfg.antithetic else cfg.samples, 1)
    signs = np.array((1.0, -1.0) if cfg.antithetic else (1.0,))
    G = signs.size
    directions = rng.normal(size=(K, n_draws, 2, N))
    v_t, v_a = directions[:, :, 0], directions[:, :, 1]  # (K, n_draws, N)

    # Layout (instance, draw, sign, kind): kind 0 perturbs the time row,
    # kind 1 the reliability row of instance k's cluster.  The stack is
    # assembled directly in cross_dtype so no full-size casts follow.
    shape = (K, n_draws, G, 2, M, N)
    T_base = batch.T.astype(cfg.cross_dtype, copy=False)
    A_base = batch.A.astype(cfg.cross_dtype, copy=False)
    T_big = np.broadcast_to(T_base[:, None, None, None], shape).copy()
    A_big = np.broadcast_to(A_base[:, None, None, None], shape).copy()
    base_t_rows = batch.T[np.arange(K), clusters]  # (K, N)
    base_a_rows = batch.A[np.arange(K), clusters]
    t_pert = base_t_rows[:, None, None, :] + (
        cfg.delta * signs[None, None, :, None] * v_t[:, :, None, :]
    )  # (K, n_draws, G, N)
    a_pert = base_a_rows[:, None, None, :] + (
        cfg.delta * signs[None, None, :, None] * v_a[:, :, None, :]
    )
    idx_k = np.arange(K)[:, None, None]
    idx_d = np.arange(n_draws)[None, :, None]
    idx_g = np.arange(G)[None, None, :]
    T_big[idx_k, idx_d, idx_g, 0, clusters[:, None, None], :] = t_pert
    A_big[idx_k, idx_d, idx_g, 1, clusters[:, None, None], :] = a_pert

    B = K * n_draws * G * 2
    gamma_big = np.broadcast_to(batch.gamma[:, None, None, None], shape[:4]).reshape(B)
    T_arr, A_arr, gammas = clamp_predictions_batch(
        T_big.reshape(B, M, N), A_big.reshape(B, M, N), gamma_big
    )
    big = BatchProblem(
        T=T_arr, A=A_arr, gamma=gammas,
        beta=batch.beta, lam=batch.lam, entropy=batch.entropy,
        dtype=cfg.cross_dtype,
    )
    x0 = (
        np.broadcast_to(X_base.astype(cfg.cross_dtype, copy=False)[:, None, None, None], shape)
        .reshape(B, M, N)
        .copy()
    )
    # Adaptive trials: the warm-started perturbation stack sits near its
    # optima, where the full-lr trial is rejected almost every iteration;
    # step memory skips those doomed evaluations.  Fine for a smoothed
    # stochastic estimator (the scalar-equivalence guarantee of the
    # cascade policy is not needed here).
    sol = solve_relaxed_batch(
        big, lr=scfg.lr, max_iters=cfg.warm_start_iters, x0=x0,
        tol=max(scfg.tol, cfg.inner_tol), patience=scfg.patience,
        adaptive_trials=True,
    )

    contracts = np.einsum(
        "kdgcmn,kmn->kdgc", sol.X.reshape(shape), grad_X
    )  # (K, n_draws, G, 2)
    base_contract = np.einsum("kmn,kmn->k", X_base, grad_X)
    diffs = (contracts - base_contract[:, None, None, None]) / (
        cfg.delta * signs[None, None, :, None]
    )
    total = n_draws * G
    dt = np.einsum("kdg,kdn->kn", diffs[:, :, :, 0], v_t) / total
    da = np.einsum("kdg,kdn->kn", diffs[:, :, :, 1], v_a) / total
    rec = get_recorder()
    if rec.enabled:
        # One fused dispatch covers K estimates; per-instance variances
        # keep the histogram comparable with the scalar estimator's.
        rec.counter_add("zo/estimates", K)
        rec.counter_add("zo/solves", B)
        rec.observe("zo/perturbation_batch", B, bounds=SIZE_BUCKETS)
        var_t = diffs[..., 0].reshape(K, -1).var(axis=1)
        var_a = diffs[..., 1].reshape(K, -1).var(axis=1)
        for k_i in range(K):
            rec.observe("zo/sample_var_t", float(var_t[k_i]), bounds=VARIANCE_BUCKETS)
            rec.observe("zo/sample_var_a", float(var_a[k_i]), bounds=VARIANCE_BUCKETS)
    return CrossZeroOrderGradients(dt=dt, da=da, solves=B)
