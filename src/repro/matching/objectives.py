"""Matching objectives and their analytic gradients.

Implements, on raw NumPy arrays (solver hot path — no autograd tape):

- Eq. (3):   ``makespan(X, T) = max_i x_iᵀ t_i``;
- Eq. (16):  the parallel variant ``max_i ζ_i(x_iᵀ1) · x_iᵀ t_i``;
- Eq. (8/17): the log-sum-exp smoothed makespan f̃;
- Eq. (4):   the reliability constraint value g(X, A) − γ;
- Eq. (9):   the barrier objective ``F = f̃ − λ log(g)`` with its gradient
  ∇_X F used by Algorithm 1, and the cross second derivatives
  ∇²_XX F, ∇²_XT F, ∇²_XA F used by the KKT differentiation (Eq. 15).

All gradients are verified against finite differences in
``tests/test_matching_objectives.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.problem import MatchingProblem
from repro.nn.functional import logsumexp_np, softmax_np

__all__ = [
    "cluster_loads",
    "makespan",
    "smooth_makespan",
    "smooth_cost",
    "decision_cost",
    "penalty_value",
    "reliability_value",
    "barrier_value",
    "barrier_gradient",
    "BarrierDerivatives",
    "barrier_second_derivatives",
    "linear_cost",
]


def cluster_loads(X: np.ndarray, problem: MatchingProblem) -> np.ndarray:
    """Per-cluster completion times ``c_i = ζ_i(k_i) · x_iᵀ t_i`` (length M)."""
    sums = np.einsum("ij,ij->i", X, problem.T)
    if not problem.is_parallel:
        return sums
    counts = X.sum(axis=1)
    zeta = np.array([s.value(np.array(k)) for s, k in zip(problem.speedup_tuple(), counts)])
    return zeta.ravel() * sums


def makespan(X: np.ndarray, problem: MatchingProblem) -> float:
    """Eq. (3)/(16): the hard max over cluster completion times."""
    return float(cluster_loads(X, problem).max())


def linear_cost(X: np.ndarray, problem: MatchingProblem) -> float:
    """Ablation (1) of Table 1: sum (instead of max) of cluster times."""
    return float(cluster_loads(X, problem).sum())


def smooth_makespan(X: np.ndarray, problem: MatchingProblem) -> float:
    """Eq. (8)/(17): ``(1/β) log Σ_i exp(β c_i)``."""
    c = cluster_loads(X, problem)
    return float(logsumexp_np(problem.beta * c)) / problem.beta


def smooth_cost(X: np.ndarray, problem: MatchingProblem) -> float:
    """The problem's smooth time-cost: LSE makespan, or the plain sum for
    the ``cost="linear"`` ablation (Table 1, experiment (1))."""
    if problem.cost == "linear":
        return linear_cost(X, problem)
    return smooth_makespan(X, problem)


def decision_cost(X: np.ndarray, problem: MatchingProblem) -> float:
    """The *discrete* cost the matching decision optimizes: the hard max
    for makespan problems, the sum for the linear-cost ablation.  Used by
    rounding and exact solvers so ablation variants make decisions under
    their own objective (evaluation metrics always use the true makespan)."""
    if problem.cost == "linear":
        return linear_cost(X, problem)
    return makespan(X, problem)


def penalty_value(X: np.ndarray, problem: MatchingProblem) -> float:
    """Constraint term: ``−λ log(g)`` (interior point) or the ablation's
    hinge ``λ max(0, −g)``; +inf signals barrier infeasibility."""
    slack = reliability_value(X, problem)
    if problem.penalty == "hinge":
        return problem.lam * max(0.0, -slack)
    if slack <= 0:
        return float("inf")
    return -problem.lam * float(np.log(slack))


def reliability_value(X: np.ndarray, problem: MatchingProblem) -> float:
    """Eq. (4): ``g(X, A) = (1/MN) Σ_i x_iᵀ a_i − γ``."""
    return problem.reliability_slack(X)


_XLOG_EPS = 1e-12


def _entropy_term(X: np.ndarray, tau: float) -> float:
    """τ Σ x log x with the 0·log 0 = 0 convention."""
    if tau == 0.0:
        return 0.0
    Xc = np.maximum(X, _XLOG_EPS)
    return float(tau * np.sum(Xc * np.log(Xc)))


def barrier_value(X: np.ndarray, problem: MatchingProblem) -> float:
    """Eq. (9): ``F(X, T, A) = f̃(X, T) − λ log(g(X, A))`` plus the optional
    entropy regularizer ``τ Σ x log x`` (see :class:`MatchingProblem`),
    dispatching on the problem's ``cost``/``penalty`` ablation knobs.

    Returns ``+inf`` outside the log barrier's domain (g ≤ 0) so line
    searches can reject infeasible steps without special-casing.
    """
    pen = penalty_value(X, problem)
    if not np.isfinite(pen):
        return float("inf")
    return smooth_cost(X, problem) + pen + _entropy_term(X, problem.entropy)


def _load_details(
    X: np.ndarray, problem: MatchingProblem
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Return (c, sums, zeta, dzeta): loads and ζ values/derivatives at the
    current fractional counts (zeta=1, dzeta=0 in the sequential case)."""
    sums = np.einsum("ij,ij->i", X, problem.T)
    M = problem.M
    if not problem.is_parallel:
        ones = np.ones(M)
        return sums, sums, ones, np.zeros(M)
    counts = X.sum(axis=1)
    sp = problem.speedup_tuple()
    zeta = np.array([float(s.value(np.array(k))) for s, k in zip(sp, counts)])
    dzeta = np.array([float(s.derivative(np.array(k))) for s, k in zip(sp, counts)])
    return zeta * sums, sums, zeta, dzeta


def barrier_gradient(X: np.ndarray, problem: MatchingProblem) -> np.ndarray:
    """∇_X F for Eq. (9), valid for both sequential and parallel objectives.

    With ``w = softmax(β c)`` the smoothed-max term contributes
    ``w_i · ∂c_i/∂x_ij`` where ``∂c_i/∂x_ij = ζ'_i(k_i)·s_i + ζ_i(k_i)·t_ij``
    (the first term vanishing in the sequential case); the barrier term
    contributes ``−λ a_ij / (MN·g)``.
    """
    c, sums, zeta, dzeta = _load_details(X, problem)
    if problem.cost == "linear":
        w = np.ones(problem.M)
    else:
        w = softmax_np(problem.beta * c)
    # dc_i/dx_ij rows: ζ'_i s_i (constant per row) + ζ_i t_ij.
    dc = dzeta[:, None] * sums[:, None] + zeta[:, None] * problem.T
    grad = w[:, None] * dc
    slack = reliability_value(X, problem)
    if problem.penalty == "hinge":
        if slack < 0:
            # d/dX λ(γ − g) = −λ A / (MN); zero subgradient when satisfied —
            # exactly the vanishing-gradient pathology Table 1 probes.
            grad -= problem.lam * problem.A / (problem.M * problem.N)
    else:
        if slack <= 0:
            raise ValueError("barrier gradient evaluated at an infeasible point (g <= 0)")
        grad -= problem.lam * problem.A / (problem.M * problem.N * slack)
    if problem.entropy:
        grad += problem.entropy * (1.0 + np.log(np.maximum(X, _XLOG_EPS)))
    return grad


@dataclass(frozen=True)
class BarrierDerivatives:
    """Second-order data for the KKT linear system (Eq. 15).

    With P = M·N and vec() flattening row-major over (cluster, task):

    - ``H``: ∇²_XX F, shape (P, P);
    - ``C_T``: ∇²_XT F, shape (P, P) — ∂(∇_X F)_{ij} / ∂T_{kl};
    - ``C_A``: ∇²_XA F, shape (P, P) — ∂(∇_X F)_{ij} / ∂A_{kl}.
    """

    H: np.ndarray
    C_T: np.ndarray
    C_A: np.ndarray


def barrier_second_derivatives(X: np.ndarray, problem: MatchingProblem) -> BarrierDerivatives:
    """Analytic ∇²_XX F, ∇²_XT F, ∇²_XA F for the *sequential* objective.

    Only the convex (ζ ≡ 1) case is supported — exactly the regime where
    the paper applies analytical differentiation (MFCP-AD); the parallel
    case uses the zeroth-order path instead.

    Derivation (w = softmax(βc), c_i = x_iᵀt_i, s = g(X,A) = Σ/MN − γ):

    - ∇²_XX: ``β t_ij t_kl (δ_ik w_i − w_i w_k) + λ a_ij a_kl / (MN s)²``
    - ∇²_XT: ``w_i δ_ik δ_jl + β t_ij x_kl (δ_ik w_i − w_i w_k)``
    - ∇²_XA: ``−λ δ_ik δ_jl / (MN s) + λ a_ij x_kl / (MN s)² / 1``
      (from differentiating ``−λ a_ij/(MN s)`` w.r.t. a_kl, using
      ∂s/∂a_kl = x_kl / MN).
    """
    if problem.is_parallel:
        raise ValueError(
            "analytic second derivatives require the sequential (convex) objective; "
            "use the zeroth-order estimator for parallel execution"
        )
    M, N = problem.M, problem.N
    P = M * N
    T, A = problem.T, problem.A
    beta, lam = problem.beta, problem.lam

    c = np.einsum("ij,ij->i", X, T)
    slack = reliability_value(X, problem)

    t_flat = T.ravel()
    a_flat = A.ravel()
    x_flat = X.ravel()
    eye = np.eye(P)

    if problem.cost == "linear":
        # ∇_X f = T exactly: no curvature, unit cross-derivative.
        H = np.zeros((P, P))
        C_T = eye.copy()
    else:
        w = softmax_np(beta * c)
        w_row = np.repeat(w, N)  # w_i broadcast over tasks, length P
        cluster_of = np.repeat(np.arange(M), N)
        same_cluster = (cluster_of[:, None] == cluster_of[None, :]).astype(np.float64)
        # d w_i / d c_k = β (δ_ik w_i − w_i w_k); expand to P×P through t/x.
        dw = beta * (same_cluster * w_row[:, None] - np.outer(w_row, w_row))
        H = dw * np.outer(t_flat, t_flat)
        C_T = w_row[:, None] * eye + dw * np.outer(t_flat, x_flat)

    if problem.penalty == "hinge":
        # Piecewise linear: zero curvature; ∂(∇_X F)/∂A = −λ/(MN)·I only
        # while the constraint is violated, zero otherwise — the
        # degenerate gradients the interior-point method is there to fix.
        C_A = (-(lam / (M * N)) * eye) if slack < 0 else np.zeros((P, P))
    else:
        if slack <= 0:
            raise ValueError("second derivatives evaluated at an infeasible point (g <= 0)")
        mn_s = M * N * slack
        H = H + (lam / mn_s**2) * np.outer(a_flat, a_flat)
        # ∂/∂a_kl [−λ a_ij/(MN s)] with ∂s/∂a_kl = x_kl/(MN):
        C_A = -(lam / mn_s) * eye + (lam / (mn_s**2)) * np.outer(a_flat, x_flat)

    if problem.entropy:
        H = H + np.diag(problem.entropy / np.maximum(x_flat, _XLOG_EPS))

    return BarrierDerivatives(H=H, C_T=C_T, C_A=C_A)
