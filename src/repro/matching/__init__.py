"""Matching core: problem container, objectives, solvers, differentiation.

This package implements the paper's optimization machinery end to end:
Eq. (2) problem, Eq. (8)/(9) smoothing and barrier, Algorithm 1 relaxed
solver, exact discrete solvers, rounding, Eq. (15) KKT differentiation,
and Algorithm 2 zeroth-order gradient estimation.
"""

from repro.matching.annealing import AnnealingConfig, solve_annealing
from repro.matching.batch import (
    BatchProblem,
    BatchSolution,
    batch_barrier_gradient,
    batch_barrier_value,
    batch_reliability_slack,
    clamp_predictions_batch,
    solve_relaxed_batch,
)
from repro.matching.batch_vjp import BatchKKTGradients, batch_kkt_vjp
from repro.matching.blocks import (
    Block,
    BlockConfig,
    BlockSolution,
    BlockStructure,
    analyze_blocks,
    solve_relaxed_blocks,
    viability_mask,
)
from repro.matching.exact import ExactSolution, solve_branch_and_bound, solve_bruteforce
from repro.matching.frank_wolfe import FrankWolfeConfig, solve_frank_wolfe
from repro.matching.kkt import KKTGradients, kkt_jacobians, kkt_vjp
from repro.matching.objectives import (
    BarrierDerivatives,
    barrier_gradient,
    barrier_second_derivatives,
    barrier_value,
    cluster_loads,
    linear_cost,
    makespan,
    reliability_value,
    smooth_makespan,
)
from repro.matching.problem import MatchingProblem, feasible_gamma
from repro.matching.relaxed import (
    RelaxedSolution,
    SolverConfig,
    project_simplex_columns,
    solve_relaxed,
)
from repro.matching.rounding import (
    assignment_from_labels,
    labels_from_assignment,
    round_assignment,
)
from repro.matching.speedup import (
    ExponentialDecaySpeedup,
    IdentitySpeedup,
    PowerLawSpeedup,
    SpeedupFunction,
)
from repro.matching.zeroth_order import (
    CrossZeroOrderGradients,
    ZeroOrderConfig,
    ZeroOrderGradients,
    optimal_perturbation,
    zo_vjp,
    zo_vjp_cross,
)

__all__ = [
    "MatchingProblem",
    "feasible_gamma",
    "cluster_loads",
    "makespan",
    "linear_cost",
    "smooth_makespan",
    "reliability_value",
    "barrier_value",
    "barrier_gradient",
    "BarrierDerivatives",
    "barrier_second_derivatives",
    "SolverConfig",
    "RelaxedSolution",
    "solve_relaxed",
    "project_simplex_columns",
    "round_assignment",
    "assignment_from_labels",
    "labels_from_assignment",
    "ExactSolution",
    "solve_bruteforce",
    "solve_branch_and_bound",
    "AnnealingConfig",
    "solve_annealing",
    "FrankWolfeConfig",
    "solve_frank_wolfe",
    "BatchProblem",
    "BatchSolution",
    "solve_relaxed_batch",
    "batch_barrier_value",
    "batch_barrier_gradient",
    "batch_reliability_slack",
    "clamp_predictions_batch",
    "BatchKKTGradients",
    "batch_kkt_vjp",
    "BlockConfig",
    "Block",
    "BlockStructure",
    "BlockSolution",
    "viability_mask",
    "analyze_blocks",
    "solve_relaxed_blocks",
    "KKTGradients",
    "kkt_vjp",
    "kkt_jacobians",
    "ZeroOrderConfig",
    "ZeroOrderGradients",
    "CrossZeroOrderGradients",
    "zo_vjp",
    "zo_vjp_cross",
    "optimal_perturbation",
    "IdentitySpeedup",
    "ExponentialDecaySpeedup",
    "PowerLawSpeedup",
    "SpeedupFunction",
]
