"""Rounding relaxed assignments to binary matchings.

§3.2: "during testing or system deployment, the matching X* is obtained
using the continuous version of the matching optimization algorithm and
subsequently rounded to produce discrete solutions."

``round_assignment`` does per-task argmax rounding followed by two repair
passes:

1. **feasibility repair** — if the rounded matching violates the
   reliability constraint, greedily move tasks to more reliable clusters,
   choosing at each step the move with the best reliability gain per unit
   of makespan increase;
2. **local search** (optional) — single-task reassignments that strictly
   reduce the objective while keeping feasibility, until a local optimum.
"""

from __future__ import annotations

import numpy as np

from repro.matching.objectives import decision_cost, reliability_value
from repro.matching.problem import MatchingProblem
from repro.telemetry import get_recorder

__all__ = ["round_assignment", "assignment_from_labels", "labels_from_assignment"]


def assignment_from_labels(labels: np.ndarray, m: int) -> np.ndarray:
    """Build the binary M×N matrix from per-task cluster indices."""
    labels = np.asarray(labels, dtype=np.int64)
    n = labels.shape[0]
    if labels.min() < 0 or labels.max() >= m:
        raise ValueError("labels out of range")
    X = np.zeros((m, n))
    X[labels, np.arange(n)] = 1.0
    return X


def labels_from_assignment(X: np.ndarray) -> np.ndarray:
    """Per-task cluster indices of a (relaxed or binary) assignment."""
    return np.asarray(X).argmax(axis=0)


def round_assignment(
    X: np.ndarray,
    problem: MatchingProblem,
    *,
    repair: bool = True,
    local_search: bool = True,
    max_moves: int = 200,
) -> np.ndarray:
    """Round a relaxed assignment to binary and repair it (see module doc)."""
    labels = labels_from_assignment(X)
    Xb = assignment_from_labels(labels, problem.M)

    if repair and reliability_value(Xb, problem) < 0:
        Xb = _repair_reliability(Xb, problem, max_moves)
    if local_search:
        Xb = _local_search(Xb, problem, max_moves)
    rec = get_recorder()
    if rec.enabled:
        # Integrality gap of this round: rounded-vs-relaxed decision cost.
        rec.counter_add("rounding/calls")
        rec.observe("rounding/gap",
                    decision_cost(Xb, problem) - decision_cost(X, problem))
    return Xb


def _repair_reliability(X: np.ndarray, problem: MatchingProblem, max_moves: int) -> np.ndarray:
    """Greedy repair: move tasks to more reliable clusters until g >= 0.

    Each move maximizes reliability gain per unit makespan degradation.
    Terminates with a best-effort matching if no improving move exists
    (the instance may simply be infeasible in the discrete domain).
    """
    X = X.copy()
    A, T = problem.A, problem.T
    for _ in range(max_moves):
        slack = reliability_value(X, problem)
        if slack >= 0:
            return X
        labels = labels_from_assignment(X)
        cur_rel = A[labels, np.arange(problem.N)]
        # Candidate moves: (task j, target cluster i) with reliability gain.
        gain = A - cur_rel[None, :]
        gain[labels, np.arange(problem.N)] = -np.inf
        best_score, best_move = -np.inf, None
        base_cost = decision_cost(X, problem)
        for j in range(problem.N):
            for i in range(problem.M):
                if gain[i, j] <= 0:
                    continue
                X[labels[j], j] = 0.0
                X[i, j] = 1.0
                cost_increase = max(decision_cost(X, problem) - base_cost, 1e-9)
                score = gain[i, j] / cost_increase
                X[i, j] = 0.0
                X[labels[j], j] = 1.0
                if score > best_score:
                    best_score, best_move = score, (i, j)
        if best_move is None:
            return X  # best effort: no reliability-improving move exists
        i, j = best_move
        X[labels[j], j] = 0.0
        X[i, j] = 1.0
    return X


def _local_search(X: np.ndarray, problem: MatchingProblem, max_moves: int) -> np.ndarray:
    """First-improvement single-task reassignment descent on the objective,
    rejecting moves that would violate the reliability constraint (when the
    incoming matching satisfies it)."""
    X = X.copy()
    feasible_required = reliability_value(X, problem) >= 0
    for _ in range(max_moves):
        base = decision_cost(X, problem)
        labels = labels_from_assignment(X)
        improved = False
        for j in range(problem.N):
            src = labels[j]
            for i in range(problem.M):
                if i == src:
                    continue
                X[src, j] = 0.0
                X[i, j] = 1.0
                ok = (not feasible_required) or reliability_value(X, problem) >= 0
                if ok and decision_cost(X, problem) < base - 1e-12:
                    improved = True
                    break
                X[i, j] = 0.0
                X[src, j] = 1.0
            if improved:
                break
        if not improved:
            return X
    return X
