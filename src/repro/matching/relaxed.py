"""Algorithm 1: optimal matching of the relaxed problem by gradient descent.

Solves the barrier-smoothed lower-level problem (Eq. 10)

    min_X  F(X, T, A)   s.t.   Σ_i x_i = 1_N,  x ∈ [0, 1]

by projected first-order iterations.  Three projection rules are provided:

- ``"softmax"`` — the paper's literal Algorithm 1 (gradient step on X then
  per-task softmax).  Simple but slow: softmax of near-uniform values
  contracts towards the barycenter, so many iterations are needed.
- ``"mirror"`` — exponentiated-gradient / mirror descent on the simplex
  (multiplicative update then normalization).  Mathematically the natural
  form of the paper's softmax idea (it *is* softmax of accumulated scaled
  gradients) and much faster; this is the default.
- ``"euclidean"`` — Euclidean projection onto the per-task simplex.

Every iterate stays strictly inside the barrier's domain via backtracking:
a step that would make the reliability slack non-positive is halved until
feasible, mirroring interior-point practice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.matching.objectives import barrier_gradient, barrier_value
from repro.matching.problem import MatchingProblem
from repro.nn.functional import softmax_np
from repro.telemetry import ITER_BUCKETS, TIME_BUCKETS_S, get_recorder

__all__ = ["SolverConfig", "RelaxedSolution", "solve_relaxed", "project_simplex_columns"]


@dataclass(frozen=True)
class SolverConfig:
    """Hyperparameters of Algorithm 1."""

    lr: float = 0.5
    max_iters: int = 300
    tol: float = 1e-7  # stop when the objective improves less than this
    projection: str = "mirror"  # "mirror" | "softmax" | "euclidean"
    backtrack: int = 30  # max step halvings to stay strictly feasible
    patience: int = 5  # consecutive small-improvement iters before stopping
    #: Scale the mirror step by 1/max|∇F| each iteration.  Near the barrier
    #: boundary the gradient magnitude explodes; a normalized step keeps the
    #: multiplicative update bounded and prevents the solver from crawling
    #: (observed on ~10% of random instances without it).
    normalize_steps: bool = True

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError(f"lr must be > 0, got {self.lr}")
        if self.max_iters <= 0:
            raise ValueError(f"max_iters must be > 0, got {self.max_iters}")
        if self.projection not in ("mirror", "softmax", "euclidean"):
            raise ValueError(f"unknown projection {self.projection!r}")
        if self.backtrack < 1:
            raise ValueError("backtrack must be >= 1")


@dataclass(frozen=True)
class RelaxedSolution:
    """Result of a relaxed solve."""

    X: np.ndarray
    objective: float  # F at the solution
    iterations: int
    converged: bool
    history: np.ndarray = field(repr=False)  # objective value per iteration
    #: Backtracking halvings the *last accepted* iterate needed (step
    #: memory).  A warm-start consumer can open its next solve at
    #: ``lr / 2^halvings`` instead of rediscovering the same scale through
    #: repeated rejections — the scalar analogue of the batch solver's
    #: ``adaptive_trials`` step-memory line search.
    halvings: int = 0


def project_simplex_columns(X: np.ndarray) -> np.ndarray:
    """Euclidean projection of each column onto the probability simplex
    (Duchi et al. 2008), vectorized over columns."""
    M, N = X.shape
    # Sort descending per column.
    U = -np.sort(-X, axis=0)
    css = np.cumsum(U, axis=0) - 1.0
    ks = np.arange(1, M + 1)[:, None]
    cond = U - css / ks > 0
    rho = M - np.argmax(cond[::-1], axis=0) - 1  # last index where cond holds
    theta = css[rho, np.arange(N)] / (rho + 1.0)
    return np.maximum(X - theta[None, :], 0.0)


def _project(X: np.ndarray, rule: str) -> np.ndarray:
    if rule == "euclidean":
        return project_simplex_columns(X)
    # "softmax" (paper-literal) — mirror handles its own update inline.
    return softmax_np(X, axis=0)


def solve_relaxed(
    problem: MatchingProblem,
    config: SolverConfig | None = None,
    *,
    x0: np.ndarray | None = None,
) -> RelaxedSolution:
    """Run Algorithm 1 and return the relaxed optimal matching.

    Parameters
    ----------
    problem:
        The matching instance (predicted or ground-truth matrices).
    config:
        Solver hyperparameters; defaults to :class:`SolverConfig`.
    x0:
        Warm start (must be strictly feasible); defaults to the uniform
        assignment.  Warm starting from a previous solve is how the
        zeroth-order estimator keeps its perturbed solves cheap.
    """
    cfg = config or SolverConfig()
    X = problem.feasible_start() if x0 is None else np.array(x0, dtype=np.float64)
    if X.shape != (problem.M, problem.N):
        raise ValueError(f"x0 must have shape {(problem.M, problem.N)}, got {X.shape}")
    if not problem.is_strictly_feasible(X):
        # A warm start from a neighbouring instance can be (mildly)
        # infeasible for this one.  The reliability slack is linear in a
        # blend weight toward the interior point, so walk toward it just
        # far enough to re-enter the barrier domain — keeping most of the
        # warm information — before giving up and starting cold.
        interior = problem.feasible_start()
        for alpha in (0.25, 0.5, 0.75):
            blended = (1.0 - alpha) * X + alpha * interior
            if problem.is_strictly_feasible(blended):
                X = blended
                break
        else:
            X = interior

    f_cur = barrier_value(X, problem)
    if x0 is not None:
        # Hedge the warm start: one extra evaluation at the cold start
        # guarantees a stale seed can never open the descent from a worse
        # point than the solver would have used anyway.
        cold = problem.feasible_start()
        f_cold = barrier_value(cold, problem)
        if f_cold < f_cur:
            X, f_cur = cold, f_cold
    history = np.empty(cfg.max_iters + 1)
    history[0] = f_cur
    best_X, best_f = X, f_cur
    stall = 0
    it = 0

    # Telemetry: the recorder is hoisted once per solve so the disabled
    # mode pays a single branch, not one lookup per iteration.
    rec = get_recorder()
    tele = rec.enabled
    ls_time = 0.0

    def _emit(sol: RelaxedSolution) -> RelaxedSolution:
        if tele:
            rec.counter_add("solve/calls")
            rec.observe("solve/iterations", sol.iterations, bounds=ITER_BUCKETS)
            rec.observe("solve/line_search_s", ls_time, bounds=TIME_BUCKETS_S)
            if not sol.converged:
                rec.counter_add("solve/nonconverged")
        return sol
    # The paper-literal "softmax" rule is not a descent method (softmax of a
    # near-uniform matrix contracts to the barycenter), so it runs in
    # non-monotone mode tracking the best iterate, exactly like Algorithm 1.
    monotone = cfg.projection != "softmax"
    last_halvings = 0
    for it in range(1, cfg.max_iters + 1):
        grad = barrier_gradient(X, problem)
        step = cfg.lr
        if cfg.normalize_steps and cfg.projection == "mirror":
            step = cfg.lr / max(float(np.abs(grad).max()), 1e-9)
        accepted = False
        if tele:
            ls_t0 = time.perf_counter()
        for h in range(cfg.backtrack):
            if cfg.projection == "mirror":
                # Multiplicative-weights update; clip the exponent for safety.
                Z = X * np.exp(-np.clip(step * grad, -50.0, 50.0))
                X_new = Z / Z.sum(axis=0, keepdims=True)
            else:
                X_new = _project(X - step * grad, cfg.projection)
            f_new = barrier_value(X_new, problem)
            if np.isfinite(f_new) and (not monotone or f_new <= f_cur + 1e-12):
                accepted = True
                last_halvings = h
                break
            step *= 0.5
        if tele:
            ls_time += time.perf_counter() - ls_t0
        if not accepted:
            history = history[: it + 1]
            history[it] = best_f
            return _emit(RelaxedSolution(X=best_X, objective=best_f, iterations=it,
                                         converged=True, history=history.copy(),
                                         halvings=last_halvings))
        improvement = f_cur - f_new
        X, f_cur = X_new, f_new
        if f_cur < best_f:
            best_X, best_f = X, f_cur
        history[it] = f_cur
        if abs(improvement) < cfg.tol:
            stall += 1
            if stall >= cfg.patience:
                history = history[: it + 1]
                return _emit(RelaxedSolution(X=best_X, objective=best_f, iterations=it,
                                             converged=True, history=history.copy(),
                                             halvings=last_halvings))
        else:
            stall = 0
    return _emit(RelaxedSolution(
        X=best_X, objective=best_f, iterations=it, converged=False,
        history=history[: it + 1].copy(), halvings=last_halvings
    ))
