"""Hardware profiles for third-party clusters.

A profile captures the first-order determinants of training throughput —
peak compute, memory bandwidth (roofline ceiling), device memory — plus the
soft characteristics that make exchange-platform clusters heterogeneous:
per-family software affinity (e.g. tensor-core transformers vs. cuDNN
convolutions) and infrastructure quality driving reliability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.specs import Family

__all__ = ["HardwareProfile"]


@dataclass(frozen=True)
class HardwareProfile:
    """Static description of one cluster's hardware.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"a100-dgx"``).
    peak_tflops:
        Aggregate peak throughput of the devices a single task can use.
    mem_bandwidth_gbs:
        Device memory bandwidth; bounds memory-bound workloads via a
        roofline model.
    memory_gb:
        Device memory available to one task; tasks approaching it pay a
        swap/recompute penalty and fail more often.
    family_affinity:
        Multiplicative throughput factor per model family (software stack
        maturity — the paper's "specific optimizations for convolutional or
        transformer architectures").  Missing families default to 1.
    base_reliability:
        Probability an infinitesimally short task completes (network +
        operations quality of the hosting institution).
    hazard_per_hour:
        Failure hazard rate: longer tasks fail more, ``exp(-hazard·t)``.
    """

    name: str
    peak_tflops: float
    mem_bandwidth_gbs: float
    memory_gb: float
    family_affinity: dict[Family, float] = field(default_factory=dict)
    base_reliability: float = 0.99
    hazard_per_hour: float = 0.01

    def __post_init__(self) -> None:
        if self.peak_tflops <= 0 or self.mem_bandwidth_gbs <= 0 or self.memory_gb <= 0:
            raise ValueError(f"{self.name}: hardware capacities must be positive")
        if not 0.0 < self.base_reliability <= 1.0:
            raise ValueError(f"{self.name}: base_reliability must be in (0, 1]")
        if self.hazard_per_hour < 0:
            raise ValueError(f"{self.name}: hazard_per_hour must be >= 0")
        for fam, aff in self.family_affinity.items():
            if aff <= 0:
                raise ValueError(f"{self.name}: affinity for {fam} must be positive")

    def affinity(self, family: Family) -> float:
        """Throughput multiplier for ``family`` (1.0 when unspecified)."""
        return self.family_affinity.get(family, 1.0)
