"""Cluster substrate: hardware profiles, ground-truth performance and
reliability models, and the archetype catalog with the paper's settings
A/B/C.  Replaces the proprietary Xirang platform measurements (DESIGN.md §2).
"""

from repro.clusters.cluster import Cluster, Measurement
from repro.clusters.hardware import HardwareProfile
from repro.clusters.perf_models import PerfModel, ResponseShape
from repro.clusters.catalog import (
    ARCHETYPES,
    SETTINGS,
    archetype_names,
    make_cluster,
    make_pool,
    make_setting,
    make_specialist_pool,
    shard_pool,
)
from repro.clusters.reliability import ReliabilityModel

__all__ = [
    "Cluster",
    "Measurement",
    "HardwareProfile",
    "PerfModel",
    "ResponseShape",
    "ReliabilityModel",
    "ARCHETYPES",
    "SETTINGS",
    "archetype_names",
    "make_cluster",
    "make_pool",
    "make_setting",
    "make_specialist_pool",
    "shard_pool",
]
