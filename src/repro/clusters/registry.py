"""Deprecated alias of :mod:`repro.clusters.catalog`.

The cluster archetype catalog used to live at ``repro.clusters.registry``,
which collided with :mod:`repro.serve.registry` (the model *checkpoint*
registry) — two unrelated "registries" one typo apart.  The module was
renamed; this shim keeps old imports working for one release.
"""

from __future__ import annotations

import warnings

from repro.clusters.catalog import (  # noqa: F401
    ARCHETYPES,
    SETTINGS,
    archetype_names,
    make_cluster,
    make_pool,
    make_setting,
)

warnings.warn(
    "repro.clusters.registry was renamed to repro.clusters.catalog "
    "(it is the cluster archetype catalog, not the model checkpoint "
    "registry in repro.serve.registry); import from repro.clusters.catalog "
    "or the repro.clusters package instead",
    DeprecationWarning,
    stacklevel=2,
)
