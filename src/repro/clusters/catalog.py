"""Cluster archetype catalog and the paper's experimental settings.

§4.3: "we perform three experiment sets, each randomly selecting clusters
(settings A, B, C)".  We define a catalog of realistic archetypes whose
response shapes differ (the Fig. 2 heterogeneity), and fixed triples for
settings A/B/C plus a ``make_pool`` sampler for larger, randomized pools.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.clusters.cluster import Cluster
from repro.clusters.hardware import HardwareProfile
from repro.clusters.perf_models import PerfModel, ResponseShape
from repro.clusters.reliability import ReliabilityModel
from repro.utils.rng import as_generator
from repro.workloads.specs import Family

__all__ = [
    "ARCHETYPES",
    "archetype_names",
    "make_cluster",
    "make_setting",
    "make_pool",
    "make_specialist_pool",
    "shard_pool",
    "SETTINGS",
]


def _profile(**kw: object) -> HardwareProfile:
    return HardwareProfile(**kw)  # type: ignore[arg-type]


#: Archetype catalog: (hardware, response shape, base utilization, shape strength).
#: Peak/utilization pairs are calibrated so *effective* throughput ratios stay
#: within ~3x across archetypes — an exchange platform mixes generations, but
#: a cluster nobody should ever win is useless for studying matching — while
#: family affinities span ~0.45-1.35 to create the Fig. 2 crossings.
ARCHETYPES: dict[str, tuple[HardwareProfile, ResponseShape, float, float]] = {
    # Flagship training pod: fast, transformer-optimized, dependable.
    "a100-dgx": (
        _profile(
            name="a100-dgx",
            peak_tflops=312.0,
            mem_bandwidth_gbs=2039.0,
            memory_gb=80.0,
            family_affinity={Family.TRANSFORMER: 1.35, Family.CONV: 0.95,
                             Family.RNN: 0.60, Family.MLP: 0.90},
            base_reliability=0.990,
            hazard_per_hour=0.020,
        ),
        ResponseShape.LINEAR,
        0.45,
        1.0,
    ),
    # Previous-gen enterprise cluster (large V100 slice): strong cuDNN convs,
    # weak transformers, small per-device memory -> exponential blow-up.
    "v100-legacy": (
        _profile(
            name="v100-legacy",
            peak_tflops=250.0,
            mem_bandwidth_gbs=900.0,
            memory_gb=32.0,
            family_affinity={Family.CONV: 1.35, Family.TRANSFORMER: 0.60,
                             Family.RNN: 1.10, Family.MLP: 1.00},
            base_reliability=0.950,
            hazard_per_hour=0.060,
        ),
        ResponseShape.MEMORY_EXP,
        0.38,
        1.0,
    ),
    # University lab of consumer GPUs: cheap, very small memory, flaky power.
    "rtx-lab": (
        _profile(
            name="rtx-lab",
            peak_tflops=180.0,
            mem_bandwidth_gbs=1008.0,
            memory_gb=24.0,
            family_affinity={Family.CONV: 1.25, Family.TRANSFORMER: 0.80,
                             Family.MLP: 1.20, Family.RNN: 0.90},
            base_reliability=0.900,
            hazard_per_hour=0.150,
        ),
        ResponseShape.MEMORY_EXP,
        0.30,
        1.1,
    ),
    # Systolic-array pod: superb on large static batches, poor on RNNs,
    # pipelining makes it sublinear in work.
    "tpu-pod": (
        _profile(
            name="tpu-pod",
            peak_tflops=275.0,
            mem_bandwidth_gbs=1200.0,
            memory_gb=64.0,
            family_affinity={Family.CONV: 1.20, Family.TRANSFORMER: 1.20,
                             Family.RNN: 0.45, Family.MLP: 1.25},
            base_reliability=0.970,
            hazard_per_hour=0.030,
        ),
        ResponseShape.SATURATING,
        0.50,
        1.2,
    ),
    # Enterprise virtualization farm: mid-range generalist behind a shared,
    # congested fabric -- superlinear on big jobs, mediocre reliability.
    "enterprise-farm": (
        _profile(
            name="enterprise-farm",
            peak_tflops=220.0,
            mem_bandwidth_gbs=800.0,
            memory_gb=48.0,
            family_affinity={Family.CONV: 0.95, Family.TRANSFORMER: 0.95,
                             Family.RNN: 0.90, Family.MLP: 1.00},
            base_reliability=0.930,
            hazard_per_hour=0.080,
        ),
        ResponseShape.CONGESTED,
        0.33,
        1.0,
    ),
    # Edge aggregation site: slower but extremely dependable on-prem ops.
    "edge-site": (
        _profile(
            name="edge-site",
            peak_tflops=160.0,
            mem_bandwidth_gbs=600.0,
            memory_gb=40.0,
            family_affinity={Family.MLP: 1.20, Family.RNN: 1.15,
                             Family.CONV: 0.90, Family.TRANSFORMER: 0.75},
            base_reliability=0.995,
            hazard_per_hour=0.010,
        ),
        ResponseShape.LINEAR,
        0.35,
        1.0,
    ),
}

#: The paper's three fixed cluster combinations (M = 3 each).
SETTINGS: dict[str, tuple[str, str, str]] = {
    "A": ("a100-dgx", "v100-legacy", "tpu-pod"),
    "B": ("v100-legacy", "rtx-lab", "enterprise-farm"),
    "C": ("a100-dgx", "edge-site", "rtx-lab"),
}


def archetype_names() -> list[str]:
    return list(ARCHETYPES)


def make_cluster(archetype: str, cluster_id: int) -> Cluster:
    """Instantiate one cluster from the catalog."""
    if archetype not in ARCHETYPES:
        raise KeyError(f"unknown archetype {archetype!r}; options: {archetype_names()}")
    hw, shape, util, strength = ARCHETYPES[archetype]
    perf = PerfModel(hardware=hw, shape=shape, base_utilization=util, shape_strength=strength)
    rel = ReliabilityModel(hardware=hw)
    return Cluster(cluster_id=cluster_id, perf=perf, rel=rel)


def make_setting(name: str) -> list[Cluster]:
    """Build the fixed cluster triple for setting ``"A"``, ``"B"`` or ``"C"``."""
    if name not in SETTINGS:
        raise KeyError(f"unknown setting {name!r}; options: {sorted(SETTINGS)}")
    return [make_cluster(a, i) for i, a in enumerate(SETTINGS[name])]


def make_pool(
    m: int, rng: np.random.Generator | int | None = None, *, archetypes: Sequence[str] | None = None
) -> list[Cluster]:
    """Sample a pool of ``m`` clusters (with replacement beyond catalog size)."""
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    rng = as_generator(rng)
    names = list(archetypes or ARCHETYPES)
    chosen = rng.choice(names, size=m, replace=m > len(names))
    return [make_cluster(str(a), i) for i, a in enumerate(chosen)]


def make_specialist_pool(
    m: int, *, on_affinity: float = 1.25, off_affinity: float = 0.10
) -> list[Cluster]:
    """A fleet of family-specialized clusters (the sharded-platform regime).

    The catalog's generalist affinities (~0.45-1.35) keep every cluster
    plausible for every task — deliberate for the paper's settings, but it
    means the task-cluster viability graph is one connected component and
    block decomposition has nothing to split.  Real exchange platforms
    also contain *specialist* shards (a transformer pod is 10x+ off-pace
    on RNNs); this builder amplifies the catalog's hardware into one
    specialist per workload :class:`~repro.workloads.specs.Family`,
    round-robin over families and archetypes, keeping each archetype's
    speed, memory, reliability, and response shape but replacing its
    affinity map with ``on_affinity`` for its own family and
    ``off_affinity`` for the rest.  The resulting execution-time spread
    (≈ ``on/off`` ≥ 10x) makes the viability components split by family —
    the scaling benchmark's block-structured instances.  Deterministic:
    no RNG.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    if not (0 < off_affinity < on_affinity):
        raise ValueError("need 0 < off_affinity < on_affinity")
    families = list(Family)
    arch = list(ARCHETYPES.values())
    clusters = []
    for i in range(m):
        fam = families[i % len(families)]
        hw0, shape, util, strength = arch[i % len(arch)]
        hw = HardwareProfile(
            name=f"spec-{fam.value}-{i}",
            peak_tflops=hw0.peak_tflops,
            mem_bandwidth_gbs=hw0.mem_bandwidth_gbs,
            memory_gb=hw0.memory_gb,
            family_affinity={f: (on_affinity if f is fam else off_affinity)
                             for f in families},
            base_reliability=hw0.base_reliability,
            hazard_per_hour=hw0.hazard_per_hour,
        )
        clusters.append(Cluster(
            cluster_id=i,
            perf=PerfModel(hardware=hw, shape=shape, base_utilization=util,
                           shape_strength=strength),
            rel=ReliabilityModel(hardware=hw),
        ))
    return clusters


def _dominant_family(cluster: Cluster) -> tuple[int, float]:
    """Sort key for family sharding: (family rank, -affinity strength).

    The rank is the :class:`Family` enum position of the cluster's
    strongest affinity, so specialists for the same family sort together;
    stronger specialists come first within a family.  Clusters with an
    empty affinity map rank after every family.
    """
    affinity = cluster.hardware.family_affinity
    if not affinity:
        return (len(Family), 0.0)
    families = list(Family)
    best = max(affinity, key=lambda f: (affinity[f], -families.index(f)))
    return (families.index(best), -affinity[best])


def shard_pool(clusters: Sequence[Cluster], n_shards: int) -> list[list[Cluster]]:
    """Partition a cluster pool into ``n_shards`` family-coherent shards.

    Clusters are ordered by dominant family (strongest
    ``family_affinity`` entry, ties broken by :class:`Family` order,
    then ``cluster_id``) and dealt round-robin, so each shard receives a
    contiguous run of same-family specialists when the pool is built by
    :func:`make_specialist_pool` and a balanced mix otherwise.  The
    shards exactly partition the input: every cluster lands in one shard
    and ``cluster_id`` values are preserved.  Deterministic: no RNG.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if n_shards > len(clusters):
        raise ValueError(
            f"n_shards={n_shards} exceeds pool size {len(clusters)}"
        )
    ordered = sorted(clusters, key=lambda c: (*_dominant_family(c), c.cluster_id))
    shards: list[list[Cluster]] = [[] for _ in range(n_shards)]
    for i, cluster in enumerate(ordered):
        shards[i % n_shards].append(cluster)
    return shards
