"""The Cluster: hardware + performance + reliability, with noisy measurement.

A :class:`Cluster` answers two questions:

- ``true_time/true_reliability`` — the ground truth the platform can only
  observe by actually running tasks (used to build T and A);
- ``measure`` — a *noisy* observation of that ground truth, which is what
  predictor training data looks like in practice (log-normal timing noise,
  reliability estimated from a finite number of trial runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clusters.hardware import HardwareProfile
from repro.clusters.perf_models import PerfModel
from repro.clusters.reliability import ReliabilityModel
from repro.utils.rng import as_generator
from repro.workloads.taskpool import Task

__all__ = ["Cluster", "Measurement"]


@dataclass(frozen=True)
class Measurement:
    """One noisy observation of a task on a cluster."""

    task_id: int
    cluster_id: int
    time_hours: float
    reliability: float


@dataclass(frozen=True)
class Cluster:
    """One third-party cluster managed by the exchange platform."""

    cluster_id: int
    perf: PerfModel
    rel: ReliabilityModel
    timing_noise_std: float = 0.08  # std of log-normal measurement noise
    reliability_trials: int = 25  # runs used to estimate â in measurements

    def __post_init__(self) -> None:
        if self.timing_noise_std < 0:
            raise ValueError("timing_noise_std must be >= 0")
        if self.reliability_trials <= 0:
            raise ValueError("reliability_trials must be positive")
        if self.perf.hardware is not self.rel.hardware:
            raise ValueError("perf and reliability models must share one hardware profile")

    @property
    def hardware(self) -> HardwareProfile:
        return self.perf.hardware

    @property
    def name(self) -> str:
        return self.hardware.name

    # -- ground truth ---------------------------------------------------- #

    def true_time(self, task: Task) -> float:
        """Ground-truth execution time (hours) of ``task`` on this cluster."""
        return self.perf.execution_time(task.spec)

    def true_reliability(self, task: Task) -> float:
        """Ground-truth success probability of ``task`` on this cluster."""
        return self.rel.reliability(task.spec, self.true_time(task))

    def true_times(self, tasks: "list[Task]") -> np.ndarray:
        return np.array([self.true_time(t) for t in tasks])

    def true_reliabilities(self, tasks: "list[Task]") -> np.ndarray:
        return np.array([self.true_reliability(t) for t in tasks])

    # -- noisy measurement ------------------------------------------------ #

    def measure(self, task: Task, rng: np.random.Generator | int | None = None) -> Measurement:
        """Run ``task`` once and observe noisy (time, reliability) values.

        Timing noise is multiplicative log-normal (run-to-run jitter);
        reliability is the empirical success fraction over
        ``reliability_trials`` Bernoulli runs, clipped away from {0, 1}.
        """
        rng = as_generator(rng)
        t = self.true_time(task)
        a = self.true_reliability(task)
        t_obs = t * float(np.exp(rng.normal(0.0, self.timing_noise_std)))
        successes = int(np.sum(rng.random(self.reliability_trials) < a))
        a_obs = float(np.clip(successes / self.reliability_trials, 0.02, 0.995))
        return Measurement(task.task_id, self.cluster_id, t_obs, a_obs)

    def measure_batch(
        self, tasks: "list[Task]", rng: np.random.Generator | int | None = None
    ) -> list[Measurement]:
        rng = as_generator(rng)
        return [self.measure(task, rng) for task in tasks]
