"""Ground-truth execution-time models for heterogeneous clusters.

This is the synthetic replacement for the Xirang measurements (DESIGN.md
§2).  Execution time of a training run is derived from a roofline-style
physics model, then distorted by a cluster-archetype *response shape* —
the paper's Fig. 2 motif where one cluster's time grows linearly in the
workload while another's grows exponentially, producing crossings that MSE
predictors misrank.

The model is intentionally a function of the task's *interpretable*
attributes (FLOPs, memory pressure, batch size, family), not of the
embedded feature vector the predictors see — the predictors must learn an
imperfect mapping, which is the regime MFCP targets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.clusters.hardware import HardwareProfile
from repro.workloads.specs import ModelSpec

__all__ = ["ResponseShape", "PerfModel"]


class ResponseShape(str, Enum):
    """Archetype nonlinearity applied on top of the roofline base time."""

    LINEAR = "linear"  # well-run cluster: time ∝ work
    MEMORY_EXP = "memory_exp"  # small-memory devices: exp penalty near capacity
    SATURATING = "saturating"  # good pipelining: sublinear in work
    CONGESTED = "congested"  # shared fabric: superlinear in work


@dataclass(frozen=True)
class PerfModel:
    """Deterministic map ``ModelSpec → execution time (hours)`` for a cluster.

    Parameters
    ----------
    hardware:
        The cluster's hardware profile.
    shape:
        Archetype response shape (see :class:`ResponseShape`).
    base_utilization:
        Fraction of peak the software stack achieves on perfectly sized
        workloads (0.2–0.6 is realistic).
    batch_half_point:
        Batch size at which utilization reaches half its asymptote
        (small batches underutilize wide devices).
    shape_strength:
        Magnitude of the archetype nonlinearity (e.g. the exponent
        deviation for SATURATING/CONGESTED, the memory-penalty scale for
        MEMORY_EXP).
    """

    hardware: HardwareProfile
    shape: ResponseShape = ResponseShape.LINEAR
    base_utilization: float = 0.35
    batch_half_point: float = 24.0
    shape_strength: float = 1.0

    #: Reference work unit: one "hour" of a 100-TFLOPs cluster at 35% util.
    _REF_FLOPS_PER_HOUR: float = 100e12 * 0.35 * 3600.0

    def __post_init__(self) -> None:
        if not 0.0 < self.base_utilization <= 1.0:
            raise ValueError("base_utilization must be in (0, 1]")
        if self.batch_half_point <= 0:
            raise ValueError("batch_half_point must be positive")
        if self.shape_strength < 0:
            raise ValueError("shape_strength must be >= 0")

    # ------------------------------------------------------------------ #

    def utilization(self, spec: ModelSpec) -> float:
        """Achieved fraction of the roofline ceiling for this workload."""
        batch_factor = spec.batch_size / (spec.batch_size + self.batch_half_point)
        affinity = self.hardware.affinity(spec.family)
        return min(1.0, self.base_utilization * batch_factor * affinity * 2.0)

    def attainable_flops(self, spec: ModelSpec) -> float:
        """Roofline ceiling: min(peak compute, intensity × bandwidth), in FLOP/s."""
        peak = self.hardware.peak_tflops * 1e12
        bw_bound = spec.arithmetic_intensity * self.hardware.mem_bandwidth_gbs * 1e9
        return min(peak, bw_bound)

    def memory_pressure(self, spec: ModelSpec) -> float:
        """Task memory demand relative to device memory (can exceed 1)."""
        return spec.memory_gb / self.hardware.memory_gb

    def base_time_hours(self, spec: ModelSpec) -> float:
        """Roofline time before archetype distortion."""
        throughput = self.attainable_flops(spec) * self.utilization(spec)
        return spec.total_flops / (throughput * 3600.0)

    def execution_time(self, spec: ModelSpec) -> float:
        """Ground-truth execution time in hours (strictly positive).

        Applies the archetype response shape to the dimensionless work
        ratio so that shapes cross within the realistic workload range
        (Fig. 2's motivating example).
        """
        t = self.base_time_hours(spec)
        pressure = self.memory_pressure(spec)
        if self.shape is ResponseShape.LINEAR:
            out = t
        elif self.shape is ResponseShape.MEMORY_EXP:
            # Exponential blow-up as the task approaches device memory
            # (capped: beyond ~100% pressure the job thrashes but the
            # scheduler shards it rather than slowing down further).  The
            # strength is calibrated so the worst cliff is ~3x, matching
            # observed swap/recompute penalties rather than a pathological
            # 10x that would make single mispredictions dominate regret.
            out = t * math.exp(self.shape_strength * 1.0 * min(pressure, 1.0))
        elif self.shape is ResponseShape.SATURATING:
            # Sublinear: pipelining hides a growing fraction of the work.
            exponent = 1.0 / (1.0 + 0.18 * self.shape_strength)
            out = t**exponent
        elif self.shape is ResponseShape.CONGESTED:
            # Superlinear: shared interconnect congests on big jobs.
            exponent = 1.0 + 0.15 * self.shape_strength
            out = t**exponent
        else:  # pragma: no cover - exhaustive over enum
            raise ValueError(f"unknown shape {self.shape}")
        # Universal mild memory penalty (swapping starts before exhaustion).
        if pressure > 0.8:
            out *= 1.0 + 0.5 * (pressure - 0.8)
        return max(out, 1e-4)

    def execution_times(self, specs: "list[ModelSpec] | tuple[ModelSpec, ...]") -> np.ndarray:
        """Vectorized convenience over a task list."""
        return np.array([self.execution_time(s) for s in specs])
