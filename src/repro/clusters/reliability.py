"""Ground-truth reliability models.

Reliability ``a ∈ (0, 1]`` is the probability a task completes successfully
on a cluster (paper §2.1).  Third-party clusters fail through connection
interruptions and hardware faults; both scale with exposure time, so the
core model is a survival function ``exp(-hazard · t)`` on top of a
per-cluster base reliability, with an extra memory-pressure failure mode
(OOM-adjacent instability) — making reliability *task-dependent*, as the
paper's footnote 1 requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.clusters.hardware import HardwareProfile
from repro.clusters.perf_models import PerfModel
from repro.workloads.specs import ModelSpec

__all__ = ["ReliabilityModel"]

#: Reliability floor — even the flakiest assignment has some chance.
_MIN_RELIABILITY = 0.05
#: Ceiling below 1: no distributed execution is certain.
_MAX_RELIABILITY = 0.999


@dataclass(frozen=True)
class ReliabilityModel:
    """Deterministic map ``(ModelSpec, execution time) → success probability``.

    Parameters
    ----------
    hardware:
        Supplies ``base_reliability`` and ``hazard_per_hour``.
    memory_fail_scale:
        Strength of the memory-pressure failure mode: tasks using more than
        ~70% of device memory become increasingly fragile.
    """

    hardware: HardwareProfile
    memory_fail_scale: float = 0.15

    def __post_init__(self) -> None:
        if self.memory_fail_scale < 0:
            raise ValueError("memory_fail_scale must be >= 0")

    def reliability(self, spec: ModelSpec, exec_time_hours: float) -> float:
        """Ground-truth success probability of one task on this cluster."""
        if exec_time_hours < 0:
            raise ValueError("execution time must be non-negative")
        survival = math.exp(-self.hardware.hazard_per_hour * exec_time_hours)
        pressure = spec.memory_gb / self.hardware.memory_gb
        mem_ok = math.exp(-self.memory_fail_scale * max(0.0, pressure - 0.7) * 10.0)
        a = self.hardware.base_reliability * survival * mem_ok
        return float(np.clip(a, _MIN_RELIABILITY, _MAX_RELIABILITY))

    def reliabilities(self, specs: "list[ModelSpec]", times: np.ndarray) -> np.ndarray:
        """Vectorized convenience over a task list."""
        if len(specs) != len(times):
            raise ValueError("specs and times must have matching lengths")
        return np.array([self.reliability(s, float(t)) for s, t in zip(specs, times)])


def sample_success(
    reliability: float, rng: np.random.Generator, n_trials: int = 1
) -> np.ndarray:
    """Draw Bernoulli success outcomes with probability ``reliability``.

    Used by the discrete-event simulator and by the noisy measurement
    pipeline (the platform estimates â from repeated runs).
    """
    if not 0.0 <= reliability <= 1.0:
        raise ValueError(f"reliability must be in [0, 1], got {reliability}")
    return rng.random(n_trials) < reliability
