"""Closed-loop online learning for the serving stack.

The offline pipeline (fit once, serve forever) leaves the predictors
frozen while the workload drifts.  This package closes the loop the paper
leaves open: serving traffic *produces* fresh labels, labels produce
candidate refits, and candidates reach production only through a canary
gate with automatic rollback —

- :mod:`repro.retrain.buffer` — label harvesting: deduplicated,
  causality-safe replay buffer over window snapshots;
- :mod:`repro.retrain.policy` — :class:`RefitJob`: full or warm-started
  incremental candidate refits, trained a few minibatches per dispatch
  window so the matcher never blocks;
- :mod:`repro.retrain.canary` — :class:`CanaryGate`: time accuracy,
  reliability calibration, and decision-regret shadow evaluation against
  the live model;
- :mod:`repro.retrain.loop` — :class:`RetrainController`: the serve
  callback running trigger → refit → canary → hot-swap → guard/rollback
  against the versioned :class:`~repro.serve.registry.ModelRegistry`.

Build the whole stack with :func:`repro.serve.build_platform` and a
:class:`RetrainConfig`, or wire a controller by hand::

    controller = RetrainController(RetrainConfig(trigger="drift"))
    dispatcher = Dispatcher(..., registry=registry,
                            callbacks=[monitor, controller])
    controller.bind(dispatcher)
    monitor.add_retrain_listener(controller.notify_drift)
"""

from repro.retrain.buffer import Label, LabelDataset, ReplayBuffer
from repro.retrain.canary import CanaryDecision, CanaryGate, CanaryWindow
from repro.retrain.loop import RetrainConfig, RetrainController
from repro.retrain.policy import RefitJob
from repro.retrain.warmstart import (
    WarmStartTrainer,
    WarmStartTrainerConfig,
    fit_warm_start_head,
)

__all__ = [
    "Label",
    "LabelDataset",
    "ReplayBuffer",
    "RefitJob",
    "CanaryWindow",
    "CanaryDecision",
    "CanaryGate",
    "RetrainConfig",
    "RetrainController",
    "WarmStartTrainer",
    "WarmStartTrainerConfig",
    "fit_warm_start_head",
]
