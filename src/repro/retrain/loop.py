"""The closed-loop retraining controller (drift → refit → canary → swap).

:class:`RetrainController` is a :class:`~repro.serve.dispatcher.ServeCallback`
that rides the dispatcher's window stream and closes the learning loop:

1. **harvest** — every dispatched window's realized outcomes land in a
   :class:`~repro.retrain.buffer.ReplayBuffer` (orphaned dispatches are
   voided through ``on_requeue`` before they can poison a training set);
2. **trigger** — a drift alert from :class:`repro.monitor.quality.
   QualityMonitor` (wired via ``notify_drift``), a periodic schedule, or
   an explicit ``request_retrain`` arms a refit;
3. **refit** — a :class:`~repro.retrain.policy.RefitJob` trains candidate
   pairs cooperatively, ``steps_per_window`` minibatches per dispatched
   window, so training never blocks matching and the event loop stays
   deterministic;
4. **canary** — the finished candidate is shadow-scored against the live
   model by :class:`~repro.retrain.canary.CanaryGate` on held-out recent
   labels and cached decision windows.  Pass → the checkpoint registers
   with the live version as its *parent*, is promoted, and a hot-swap is
   queued for the next window.  Fail → it registers tagged
   ``canary-rejected`` for audit but the live pointer never moves;
5. **guard** — for ``guard_windows`` windows after a swap the controller
   watches the served time-prediction error; degradation beyond
   ``guard_ratio`` × the pre-swap baseline rolls the registry back along
   the lineage chain and queues a rollback swap.

Everything the controller does is keyed to simulated time and a config
seed, so an equal-seed re-run reproduces the identical sequence of
triggers, candidates, verdicts, and swaps — the property the replay
layer (:mod:`repro.monitor.replay`) verifies for swapped runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass

import numpy as np

from repro.matching.relaxed import SolverConfig
from repro.predictors.models import PredictorPair
from repro.predictors.training import TrainConfig
from repro.retrain.buffer import Label, ReplayBuffer
from repro.retrain.canary import CanaryGate, CanaryWindow
from repro.retrain.policy import REFIT_MODES, RefitJob
from repro.serve.dispatcher import Dispatcher, ServeCallback, ServeStats, WindowSnapshot
from repro.serve.registry import ModelRegistry
from repro.telemetry import get_recorder
from repro.utils.rng import as_generator

__all__ = ["RetrainConfig", "RetrainController"]

TRIGGERS = ("drift", "periodic", "both", "manual")


@dataclass(frozen=True)
class RetrainConfig:
    """Flat, JSON-safe knobs of the closed retraining loop."""

    # Trigger policy.
    trigger: str = "drift"  # drift | periodic | both | manual
    period_windows: int = 0  # periodic cadence (0 = never), used by periodic/both
    cooldown_windows: int = 16  # windows between retrain attempts
    # Label harvesting / sampling.
    capacity: int = 4096
    min_labels: int = 32  # observable labels required to arm a refit
    min_cluster_labels: int = 8
    sample_size: int = 256
    half_life_hours: float = 8.0
    holdout_fraction: float = 0.25
    # Refit optimization (feeds TrainConfig).
    mode: str = "incremental"  # or "full"
    steps_per_window: int = 8  # cooperative minibatch budget per dispatch
    epochs: int = 40
    lr: float = 5e-3
    batch_size: int = 16
    weight_decay: float = 1e-5
    # Canary gate.
    canary_min_holdout: int = 12
    canary_windows: int = 6  # recent windows cached for decision-regret replay
    time_ratio_max: float = 1.0
    brier_ratio_max: float = 1.05
    regret_ratio_max: float = 1.02
    # Post-swap guard.
    guard_windows: int = 10
    guard_ratio: float = 1.5
    # Determinism.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.trigger not in TRIGGERS:
            raise ValueError(f"trigger must be one of {TRIGGERS}, got {self.trigger!r}")
        if self.mode not in REFIT_MODES:
            raise ValueError(f"mode must be one of {REFIT_MODES}, got {self.mode!r}")
        if self.trigger in ("periodic", "both") and self.period_windows <= 0:
            raise ValueError("periodic trigger requires period_windows > 0")
        for name in ("capacity", "min_labels", "min_cluster_labels", "sample_size",
                     "steps_per_window", "epochs", "batch_size",
                     "canary_min_holdout", "guard_windows"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        if self.guard_ratio <= 0 or self.half_life_hours <= 0:
            raise ValueError("guard_ratio and half_life_hours must be positive")

    # JSON round-trip (serving params in run logs; CLI flag parsing).
    def to_params(self) -> dict:
        return asdict(self)

    @classmethod
    def from_params(cls, params: dict) -> "RetrainConfig":
        return cls(**params)

    def train_config(self) -> TrainConfig:
        return TrainConfig(epochs=self.epochs, lr=self.lr,
                           batch_size=self.batch_size,
                           weight_decay=self.weight_decay)


def _pairs_of_method(method: object) -> "list[PredictorPair]":
    for attr in ("pairs", "_pairs"):
        pairs = getattr(method, attr, None)
        if pairs:
            return list(pairs)
    raise TypeError(
        f"{type(method).__name__} exposes no predictor pairs; the retraining "
        "loop needs a prediction-driven method (TSM/MFCP)"
    )


class RetrainController(ServeCallback):
    """Serve callback running the harvest → refit → canary → guard loop."""

    def __init__(
        self,
        config: "RetrainConfig | None" = None,
        *,
        registry: "ModelRegistry | None" = None,
        solver_config: "SolverConfig | None" = None,
    ) -> None:
        self.config = cfg = config or RetrainConfig()
        self.registry = registry
        self.buffer = ReplayBuffer(capacity=cfg.capacity)
        self.gate = CanaryGate(
            min_holdout=cfg.canary_min_holdout,
            time_ratio_max=cfg.time_ratio_max,
            brier_ratio_max=cfg.brier_ratio_max,
            regret_ratio_max=cfg.regret_ratio_max,
            solver_config=solver_config,
        )
        self._rng = as_generator(cfg.seed)
        self.state = "idle"  # idle | training | guard
        self.dispatcher: "Dispatcher | None" = None
        self._pair_index: "dict[int, int]" = {}
        self._cluster_ids: "list[int]" = []
        self._drift_reason: "str | None" = None
        self._manual_reason: "str | None" = None
        self._cooldown_until = 0  # window number before which no trigger arms
        self._last_trigger_window = 0
        self._job: "RefitJob | None" = None
        self._holdout: "list[Label]" = []
        self._windows: "deque[CanaryWindow]" = deque(maxlen=cfg.canary_windows)
        # Per-window served time-prediction MSE (log space) — guard metric.
        self._window_mse: "deque[tuple[int, float]]" = deque(
            maxlen=2 * cfg.guard_windows)
        #: Full ``(window, served log-time MSE)`` history — one tuple per
        #: window with completed tasks; the before/after evidence tests
        #: and examples use to show a swap actually helped.
        self.window_errors: "list[tuple[int, float]]" = []
        self._guard: "dict | None" = None
        # Audit trail for tests/examples: every verdict the loop produced.
        self.events: "list[dict]" = []

    # ------------------------------------------------------------------ #
    # Wiring.
    # ------------------------------------------------------------------ #

    def bind(self, dispatcher: Dispatcher) -> "RetrainController":
        """Attach to a dispatcher (must carry the checkpoint registry).

        Bootstraps the registry when empty: the currently fitted model is
        registered and promoted so every later refit has a parent to
        record — and a rollback target.
        """
        if dispatcher.registry is None and self.registry is None:
            raise ValueError("retraining requires a dispatcher with a registry")
        if self.registry is None:
            self.registry = dispatcher.registry
        elif dispatcher.registry is not None and dispatcher.registry is not self.registry:
            raise ValueError("dispatcher and controller registries differ")
        self.dispatcher = dispatcher
        self._cluster_ids = [c.cluster_id for c in dispatcher.clusters]
        self._pair_index = {cid: i for i, cid in enumerate(self._cluster_ids)}
        _pairs_of_method(dispatcher.method)  # fail fast on oracle-style methods
        if not self.registry.versions():
            info = self.registry.save(dispatcher.method, config=self.config,
                                      tag="bootstrap")
            self.registry.set_live(info.version)
        elif self.registry.live() is None:
            self.registry.set_live(self.registry.latest())
        return self

    def notify_drift(self, alert: object = None) -> None:
        """Drift-trigger entry point (wired to the quality monitor)."""
        reason = getattr(alert, "message", None) or (
            alert.get("message") if isinstance(alert, dict) else None)
        self._drift_reason = f"drift: {reason}" if reason else "drift"

    def request_retrain(self, reason: str = "manual") -> None:
        """Arm a refit regardless of the trigger policy (CLI/operator)."""
        self._manual_reason = reason

    # ------------------------------------------------------------------ #
    # Serve callbacks.
    # ------------------------------------------------------------------ #

    def on_requeue(self, task_id: int, arrival: float, t: float) -> None:
        self.buffer.discard(task_id, arrival)

    def on_window(self, snapshot: WindowSnapshot) -> None:
        self.buffer.harvest(snapshot)
        jt = getattr(self.dispatcher, "journeys", None)
        if jt is not None:
            # Retrain provenance: each batch member's label entered the
            # replay buffer from this window (a later requeue discards
            # it again — the ``requeued`` journey event marks that).
            for j, tid in enumerate(snapshot.task_ids):
                jt.record(int(tid), float(snapshot.arrival[j]), "harvested",
                          snapshot.time, window=snapshot.window,
                          buffer_size=len(self.buffer))
        self._cache_window(snapshot)
        self._track_served_error(snapshot)
        if self.state == "training":
            self._advance_training(snapshot)
        elif self.state == "guard":
            self._advance_guard(snapshot)
        if self.state == "idle":
            reason = self._trigger_reason(snapshot.window)
            if reason is not None:
                self._start_job(snapshot, reason)

    def on_finish(self, stats: ServeStats) -> None:
        rec = get_recorder()
        if rec.enabled:
            rec.event("retrain/summary", state=self.state,
                      buffer=self.buffer.stats(),
                      events=[e["kind"] for e in self.events])

    # ------------------------------------------------------------------ #
    # Window bookkeeping.
    # ------------------------------------------------------------------ #

    def _cache_window(self, snapshot: WindowSnapshot) -> None:
        if snapshot.features is None:
            return
        self._windows.append(CanaryWindow(
            window=snapshot.window,
            pair_rows=tuple(self._pair_index[cid] for cid in snapshot.cluster_ids),
            T=snapshot.T, A=snapshot.A, gamma=snapshot.gamma,
            Z=snapshot.features,
        ))

    def _track_served_error(self, snapshot: WindowSnapshot) -> None:
        """Log-space time-prediction MSE of this window's served decisions."""
        if snapshot.T_hat is None:
            return
        rows = np.argmax(snapshot.X, axis=0)
        ok = snapshot.success & (snapshot.realized_hours > 0)
        if not ok.any():
            return
        t_hat = snapshot.T_hat[rows[ok], np.flatnonzero(ok)]
        err = np.log(np.maximum(t_hat, 1e-12)) - np.log(snapshot.realized_hours[ok])
        self._window_mse.append((snapshot.window, float(np.mean(err ** 2))))
        self.window_errors.append(self._window_mse[-1])

    def served_mse(self, last: "int | None" = None) -> float:
        """Mean served time-prediction MSE over the last ``last`` windows."""
        vals = [m for _, m in self._window_mse]
        if last is not None:
            vals = vals[-last:]
        return float(np.mean(vals)) if vals else float("nan")

    # ------------------------------------------------------------------ #
    # Trigger → job.
    # ------------------------------------------------------------------ #

    def _trigger_reason(self, window: int) -> "str | None":
        if window < self._cooldown_until:
            return None
        if self._manual_reason is not None:
            reason, self._manual_reason = self._manual_reason, None
            return reason
        cfg = self.config
        if cfg.trigger in ("drift", "both") and self._drift_reason is not None:
            reason, self._drift_reason = self._drift_reason, None
            return reason
        if cfg.trigger in ("periodic", "both") and cfg.period_windows > 0:
            if window - self._last_trigger_window >= cfg.period_windows:
                return f"periodic: every {cfg.period_windows} windows"
        return None

    def _start_job(self, snapshot: WindowSnapshot, reason: str) -> None:
        cfg = self.config
        rec = get_recorder()
        ready = self.buffer.ready(snapshot.time)
        if len(ready) < cfg.min_labels:
            # Not enough evidence yet; retry after a short backoff rather
            # than burning a trigger every window.
            self._cooldown_until = snapshot.window + max(1, cfg.cooldown_windows // 4)
            self._drift_reason = self._drift_reason or reason
            return
        sampled = self.buffer.sample(snapshot.time, cfg.sample_size, self._rng,
                                     half_life_hours=cfg.half_life_hours)
        train, holdout = self.buffer.split_holdout(sampled, cfg.holdout_fraction)
        live_pairs = _pairs_of_method(self.dispatcher.method)
        try:
            job = RefitJob.build(
                live_pairs, self._cluster_ids, ReplayBuffer.datasets(train),
                mode=cfg.mode, config=cfg.train_config(), rng=self._rng,
                min_cluster_labels=cfg.min_cluster_labels,
            )
        except ValueError:
            self._cooldown_until = snapshot.window + max(1, cfg.cooldown_windows // 4)
            self._drift_reason = self._drift_reason or reason
            return
        self._job = job
        self._holdout = holdout
        self._last_trigger_window = snapshot.window
        self.state = "training"
        self.events.append({"kind": "triggered", "window": snapshot.window,
                            "reason": reason, "n_train": len(train),
                            "n_holdout": len(holdout)})
        if rec.enabled:
            rec.counter_add("retrain/jobs")
            rec.event("retrain/triggered", window=snapshot.window, reason=reason,
                      mode=cfg.mode, n_train=len(train), n_holdout=len(holdout),
                      total_steps=job.total_steps)

    # ------------------------------------------------------------------ #
    # Training → canary → swap.
    # ------------------------------------------------------------------ #

    def _advance_training(self, snapshot: WindowSnapshot) -> None:
        job = self._job
        assert job is not None
        ran = job.run_steps(self.config.steps_per_window)
        rec = get_recorder()
        if rec.enabled and ran:
            rec.counter_add("retrain/steps", ran)
        if not job.done:
            return
        self._finish_job(snapshot, job)

    def _finish_job(self, snapshot: WindowSnapshot, job: RefitJob) -> None:
        cfg = self.config
        rec = get_recorder()
        live_pairs = _pairs_of_method(self.dispatcher.method)
        holdout = [l for l in self._holdout if l.end <= snapshot.time]
        decision = self.gate.evaluate(
            job.pairs, live_pairs, self._pair_index, holdout,
            list(self._windows),
        )
        metrics = {**decision.metrics(),
                   "refit_steps": float(job.steps_done),
                   "refit_labels": float(job.n_labels)}
        live_version = self.registry.live()
        self._job = None
        self._holdout = []
        self._cooldown_until = snapshot.window + cfg.cooldown_windows
        if rec.enabled:
            rec.event("retrain/canary", window=snapshot.window,
                      passed=decision.passed, reasons=list(decision.reasons),
                      **{k: v for k, v in decision.metrics().items()
                         if k != "canary_passed"})
        if not decision.passed:
            info = self.registry.save(job.pairs, config=cfg, metrics=metrics,
                                      tag="canary-rejected", parent=live_version)
            self.state = "idle"
            self.events.append({"kind": "rejected", "window": snapshot.window,
                                "version": info.version,
                                "reasons": list(decision.reasons)})
            if rec.enabled:
                rec.counter_add("retrain/rejections")
                rec.event("retrain/rejected", window=snapshot.window,
                          version=info.version, reasons=list(decision.reasons))
            return
        info = self.registry.save(job.pairs, config=cfg, metrics=metrics,
                                  tag=f"refit-{job.mode}", parent=live_version)
        self.registry.set_live(info.version)
        self.dispatcher.request_swap(info.version, reason="retrain")
        baseline = self.served_mse(cfg.guard_windows)
        self._guard = {"after_window": snapshot.window, "baseline": baseline,
                       "collected": [], "version": info.version}
        self.state = "guard"
        self.events.append({"kind": "promoted", "window": snapshot.window,
                            "version": info.version, "parent": live_version,
                            "baseline_mse": baseline})
        if rec.enabled:
            rec.counter_add("retrain/promotions")
            rec.event("retrain/promoted", window=snapshot.window,
                      version=info.version, parent=live_version,
                      digest=info.digest, baseline_mse=baseline)

    # ------------------------------------------------------------------ #
    # Post-swap guard.
    # ------------------------------------------------------------------ #

    def _advance_guard(self, snapshot: WindowSnapshot) -> None:
        guard = self._guard
        assert guard is not None
        cfg = self.config
        # The swap applies at the dispatch *after* the request; only
        # windows served by the new model count toward the verdict.
        if snapshot.window <= guard["after_window"]:
            return
        if self._window_mse and self._window_mse[-1][0] == snapshot.window:
            guard["collected"].append(self._window_mse[-1][1])
        if len(guard["collected"]) < cfg.guard_windows:
            return
        post = float(np.mean(guard["collected"]))
        baseline = guard["baseline"]
        rec = get_recorder()
        degraded = (np.isfinite(baseline) and baseline > 0
                    and post > cfg.guard_ratio * baseline)
        self._guard = None
        self.state = "idle"
        if not degraded:
            self.events.append({"kind": "guard_passed", "window": snapshot.window,
                                "version": guard["version"], "post_mse": post,
                                "baseline_mse": baseline})
            if rec.enabled:
                rec.event("retrain/guard_passed", window=snapshot.window,
                          version=guard["version"], post_mse=post,
                          baseline_mse=baseline)
            return
        info = self.registry.rollback()
        self.dispatcher.request_swap(info.version, reason="rollback")
        self._cooldown_until = snapshot.window + cfg.cooldown_windows
        self.events.append({"kind": "rollback", "window": snapshot.window,
                            "from_version": guard["version"],
                            "to_version": info.version,
                            "post_mse": post, "baseline_mse": baseline})
        if rec.enabled:
            rec.counter_add("retrain/rollbacks")
            rec.event("retrain/rollback", window=snapshot.window,
                      from_version=guard["version"], to_version=info.version,
                      post_mse=post, baseline_mse=baseline)
