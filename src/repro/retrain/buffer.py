"""Label harvesting: turning served windows into predictor training data.

A deployed exchange platform observes, for every task it executes, the
busy time the cluster actually spent and whether the run succeeded —
exactly the ``(z, t, a)`` triples the two-stage predictors were trained
on offline (paper Eq. 1), except *free* and *fresh*.  This module
collects them from :class:`~repro.serve.dispatcher.WindowSnapshot`
streams into a bounded replay buffer the refit policy samples from.

Three realities of the serving loop make this harder than appending rows:

- **duplicates** — a cluster dropout orphans scheduled tasks, which are
  re-queued and re-dispatched; the same logical task then appears in two
  window snapshots, and only the *last* dispatch's execution is real.
  Labels are keyed by ``(task_id, arrival)`` (pool tasks recur across a
  stream, but each logical arrival is unique); a later dispatch
  overwrites the earlier phantom, and the dispatcher's ``on_requeue``
  hook lets the harvester :meth:`discard` a voided label the moment the
  orphan is re-queued — before any sampling could see it;
- **time travel** — a snapshot is built at *dispatch* time, but the
  execution it describes finishes at ``end``; a label must not train a
  model before the platform could have observed it.  :meth:`ready`
  filters on ``end <= now``, and every sampling entry point takes the
  current simulated hour;
- **censoring** — failed runs occupy their cluster for a truncated
  (not full) duration, so their ``realized_hours`` is a biased time
  label; they carry reliability signal only.  :meth:`datasets` splits
  accordingly.

Everything is driven by the caller's seeded generator and simulated
time — harvesting the same snapshot stream twice yields byte-identical
buffers and samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.serve.dispatcher import WindowSnapshot

__all__ = ["Label", "LabelDataset", "ReplayBuffer"]


@dataclass(frozen=True)
class Label:
    """One realized execution: the training example a served task yields."""

    task_id: int
    arrival: float  # together with task_id: the logical-arrival key
    cluster_id: int
    window: int
    dispatched: float
    end: float  # simulated hour the label becomes observable
    realized_hours: float  # busy time the cluster actually spent
    success: bool
    requeues: int
    features: np.ndarray  # raw task features z, shape (d,)

    @property
    def key(self) -> tuple[int, float]:
        return (self.task_id, self.arrival)


@dataclass(frozen=True)
class LabelDataset:
    """Per-cluster training arrays distilled from a set of labels.

    ``Z_time``/``t`` hold only successful executions (uncensored times);
    ``Z_rel``/``a`` hold every execution with its binary outcome.
    """

    cluster_id: int
    Z_time: np.ndarray
    t: np.ndarray
    Z_rel: np.ndarray
    a: np.ndarray

    @property
    def n_time(self) -> int:
        return len(self.t)

    @property
    def n_rel(self) -> int:
        return len(self.a)


class ReplayBuffer:
    """Bounded, deduplicated store of realized execution labels."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._labels: "dict[tuple[int, float], Label]" = {}
        self.harvested = 0  # labels ingested (before dedup/eviction)
        self.superseded = 0  # overwrites of an earlier dispatch's label
        self.discarded = 0  # labels voided by on_requeue
        self.evicted = 0  # labels dropped by the capacity bound

    # ------------------------------------------------------------------ #
    # Ingest.
    # ------------------------------------------------------------------ #

    def add(self, label: Label) -> None:
        """Insert one label; a later dispatch supersedes an earlier one."""
        self.harvested += 1
        prior = self._labels.get(label.key)
        if prior is not None:
            if label.dispatched < prior.dispatched:
                return  # out-of-order duplicate of an already-superseded run
            self.superseded += 1
        self._labels[label.key] = label
        if len(self._labels) > self.capacity:
            oldest = min(self._labels.values(), key=lambda l: (l.end, l.key))
            del self._labels[oldest.key]
            self.evicted += 1

    def harvest(self, snapshot: WindowSnapshot) -> int:
        """Ingest every task of a dispatched window; returns labels added."""
        if snapshot.features is None:
            raise ValueError(
                "snapshot carries no feature matrix — harvesting needs the "
                "dispatcher's WindowSnapshot.features"
            )
        k = len(snapshot.task_ids)
        for j in range(k):
            self.add(Label(
                task_id=int(snapshot.task_ids[j]),
                arrival=float(snapshot.arrival[j]),
                cluster_id=int(snapshot.cluster_ids[
                    int(np.argmax(snapshot.X[:, j]))]),
                window=snapshot.window,
                dispatched=snapshot.time,
                end=float(snapshot.end[j]),
                realized_hours=float(snapshot.realized_hours[j]),
                success=bool(snapshot.success[j]),
                requeues=int(snapshot.requeues[j]),
                features=snapshot.features[j],
            ))
        return k

    def discard(self, task_id: int, arrival: float) -> bool:
        """Void the label of an orphaned (re-queued) dispatch, if present."""
        if self._labels.pop((task_id, arrival), None) is not None:
            self.discarded += 1
            return True
        return False

    # ------------------------------------------------------------------ #
    # Query / sample.
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._labels)

    def labels(self) -> "list[Label]":
        """All stored labels in deterministic (task_id, arrival) order."""
        return [self._labels[k] for k in sorted(self._labels)]

    def ready(self, now: float) -> "list[Label]":
        """Labels whose execution has finished by simulated hour ``now``."""
        return [l for l in self.labels() if l.end <= now]

    def sample(
        self,
        now: float,
        size: int,
        rng: np.random.Generator,
        *,
        half_life_hours: float = 8.0,
    ) -> "list[Label]":
        """Recency-weighted sample (no replacement) of observable labels.

        A label aged ``a`` hours (measured from its ``end``) is weighted
        ``2^(-a / half_life_hours)``: recent traffic dominates so the
        refit chases the *current* workload mix, but older labels retain
        mass and keep rare task families represented.
        """
        if half_life_hours <= 0:
            raise ValueError("half_life_hours must be positive")
        pool = self.ready(now)
        if len(pool) <= size:
            return pool
        age = np.array([now - l.end for l in pool])
        weights = np.exp2(-age / half_life_hours)
        weights /= weights.sum()
        idx = rng.choice(len(pool), size=size, replace=False, p=weights)
        return [pool[i] for i in sorted(idx)]

    def split_holdout(
        self, labels: "Iterable[Label]", fraction: float
    ) -> "tuple[list[Label], list[Label]]":
        """(train, holdout): the *newest* ``fraction`` by ``end`` held out.

        The canary gate scores candidates on the freshest slice — the
        traffic most like what the candidate will serve next — while the
        refit trains on the remainder, so the gate never grades a model
        on data it trained on.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        ordered = sorted(labels, key=lambda l: (l.end, l.key))
        n_hold = max(1, int(round(len(ordered) * fraction))) if ordered else 0
        cut = len(ordered) - n_hold
        return ordered[:cut], ordered[cut:]

    # ------------------------------------------------------------------ #
    # Dataset assembly.
    # ------------------------------------------------------------------ #

    @staticmethod
    def datasets(labels: "Iterable[Label]") -> "dict[int, LabelDataset]":
        """Group labels into per-cluster training arrays.

        Returns ``{cluster_id: LabelDataset}``; clusters appear only when
        they received at least one label.
        """
        by_cluster: "dict[int, list[Label]]" = {}
        for label in labels:
            by_cluster.setdefault(label.cluster_id, []).append(label)
        out: "dict[int, LabelDataset]" = {}
        for cid in sorted(by_cluster):
            group = by_cluster[cid]
            ok = [l for l in group if l.success]
            out[cid] = LabelDataset(
                cluster_id=cid,
                Z_time=(np.stack([l.features for l in ok])
                        if ok else np.empty((0, 0))),
                t=np.array([l.realized_hours for l in ok]),
                Z_rel=np.stack([l.features for l in group]),
                a=np.array([float(l.success) for l in group]),
            )
        return out

    def stats(self) -> dict:
        """Counters for telemetry/tests (dedup bookkeeping included)."""
        return {
            "size": len(self._labels),
            "harvested": self.harvested,
            "superseded": self.superseded,
            "discarded": self.discarded,
            "evicted": self.evicted,
        }
