"""Refit policy: building candidate predictors and training them in slices.

A retrain must never block the dispatcher — the platform keeps matching
traffic while new weights are fit.  :class:`RefitJob` packages one
candidate model (the full per-cluster pair list, same architecture as
the live model) together with the :class:`~repro.predictors.training.
StepwiseTrainer` instances that will fit it, and exposes a single
``run_steps(budget)`` knob: the controller calls it once per dispatched
window with a fixed minibatch budget, so training advances *cooperatively*
inside the deterministic event loop (simulated time never waits on a
training epoch, and trace identity is preserved because the candidate's
weights touch nothing the dispatcher reads until a hot-swap is applied).

Two refit modes, mirroring the offline/online trade-off:

- ``"full"`` — fresh random-init pairs, trained from scratch on the
  harvested labels only.  Slow but unbiased: the candidate owes nothing
  to a possibly-poisoned live model;
- ``"incremental"`` — pairs cloned from the live model (warm start),
  refined on recent labels.  Converges in far fewer steps, the natural
  choice for drift-triggered refits where the live model is mostly right.

Clusters that harvested fewer than ``min_cluster_labels`` examples keep a
frozen clone of their live pair: a handful of labels would overfit, and
the canary gate judges the *whole* candidate anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.predictors.models import PredictorPair
from repro.predictors.training import StepwiseTrainer, TrainConfig
from repro.retrain.buffer import LabelDataset
from repro.utils.rng import spawn

__all__ = ["RefitJob"]

REFIT_MODES = ("full", "incremental")


@dataclass
class RefitJob:
    """One in-flight candidate refit: pairs + the trainers fitting them."""

    mode: str
    pairs: "list[PredictorPair]"  # full candidate, indexed like the live model
    trainers: "list[StepwiseTrainer]"  # round-robin work queue
    trained_clusters: "list[int]"  # cluster ids actually being refit
    skipped_clusters: "list[int]"  # too few labels: kept frozen at live weights
    n_labels: int  # training labels backing this job
    steps_done: int = 0
    _cursor: int = field(default=0, repr=False)

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #

    @staticmethod
    def build(
        live_pairs: "list[PredictorPair]",
        cluster_ids: "list[int]",
        datasets: "dict[int, LabelDataset]",
        *,
        mode: str = "incremental",
        config: "TrainConfig | None" = None,
        rng: "np.random.Generator | None" = None,
        min_cluster_labels: int = 8,
    ) -> "RefitJob":
        """Assemble a candidate refit over the harvested label datasets.

        ``live_pairs`` and ``cluster_ids`` run in the dispatcher's cluster
        order (``pairs[i]`` serves ``cluster_ids[i]``); ``datasets`` maps
        cluster id to its harvested arrays.  Raises ``ValueError`` when no
        cluster clears the label floor — the caller should wait for more
        traffic rather than canary an untrained candidate.
        """
        if mode not in REFIT_MODES:
            raise ValueError(f"mode must be one of {REFIT_MODES}, got {mode!r}")
        if len(live_pairs) != len(cluster_ids):
            raise ValueError("live_pairs and cluster_ids must align")
        cfg = config or TrainConfig()
        rng = rng if rng is not None else np.random.default_rng(0)

        pairs: "list[PredictorPair]" = []
        trainers: "list[StepwiseTrainer]" = []
        trained: "list[int]" = []
        skipped: "list[int]" = []
        n_labels = 0
        for live, cid in zip(live_pairs, cluster_ids):
            ds = datasets.get(cid)
            # The time head needs uncensored (successful) examples; the
            # reliability head trains on every outcome.  Gate on the time
            # count — it is the scarcer of the two.
            if ds is None or ds.n_time < min_cluster_labels:
                pairs.append(live.clone(rng=spawn(rng)))
                skipped.append(cid)
                continue
            if mode == "incremental":
                cand = live.clone(rng=spawn(rng))
            else:
                cand = PredictorPair(
                    live.in_features, live.hidden_sizes,
                    standardizer=live.time.standardizer, rng=spawn(rng),
                )
                cand.reliability.standardizer = live.reliability.standardizer
            pairs.append(cand)
            trained.append(cid)
            n_labels += ds.n_rel
            trainers.append(StepwiseTrainer(
                cand.time, ds.Z_time, ds.t, cfg, spawn(rng), loss="log_mse"))
            trainers.append(StepwiseTrainer(
                cand.reliability, ds.Z_rel, ds.a, cfg, spawn(rng), loss="mse"))
        if not trained:
            raise ValueError(
                f"no cluster reached min_cluster_labels={min_cluster_labels} "
                f"({ {cid: ds.n_time for cid, ds in sorted(datasets.items())} } "
                "successful labels per cluster)"
            )
        return RefitJob(
            mode=mode, pairs=pairs, trainers=trainers,
            trained_clusters=trained, skipped_clusters=skipped,
            n_labels=n_labels,
        )

    # ------------------------------------------------------------------ #
    # Cooperative execution.
    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        return all(tr.done for tr in self.trainers)

    @property
    def total_steps(self) -> int:
        return sum(tr.total_steps for tr in self.trainers)

    def run_steps(self, budget: int) -> int:
        """Advance up to ``budget`` minibatches, round-robin across heads.

        Interleaving (rather than draining one trainer before the next)
        keeps every head's progress proportional when a run ends before
        the job finishes — a partially trained candidate is still judged
        on both of its heads, not a finished time head and a random
        reliability head.
        """
        ran = 0
        while ran < budget and not self.done:
            tr = self.trainers[self._cursor % len(self.trainers)]
            self._cursor += 1
            if tr.done:
                continue
            tr.step()
            ran += 1
        self.steps_done += ran
        return ran

    def summary(self) -> dict:
        """Scalar description for telemetry and checkpoint metrics."""
        losses = [tr.last_loss for tr in self.trainers if tr.steps_done]
        return {
            "mode": self.mode,
            "steps_done": self.steps_done,
            "total_steps": self.total_steps,
            "n_labels": self.n_labels,
            "n_trained_clusters": len(self.trained_clusters),
            "n_skipped_clusters": len(self.skipped_clusters),
            "mean_last_loss": float(np.mean(losses)) if losses else float("nan"),
        }
