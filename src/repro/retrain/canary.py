"""Canary gate: shadow-evaluating a refit candidate before it serves.

A candidate that looks fine on its own training loss can still be worse
than the live model *where it matters* — on fresh traffic, and on the
decisions the matcher derives from it.  The gate therefore scores the
candidate against the live model on three axes, all computed offline
(shadow mode: the candidate touches no production decision):

- **time accuracy** — MSE in log-time space over the held-out labels'
  successful executions, the exact loss the time head optimizes;
- **reliability calibration** — Brier score of â against the binary
  realized outcome over all held-out labels;
- **decision regret** — for a cache of recent windows, re-run the
  deployment pipeline (predict → relax → round) under each model's
  predictions and compare the *true* per-task makespan of the resulting
  assignments (the paper's Eq. 6 numerator, same re-solve idiom as
  :class:`repro.monitor.attribution.RegretAttributor`).  Accuracy gates
  alone miss the asymmetry of decision losses — a model can have lower
  MSE yet rank clusters worse; this axis is what "joint prediction and
  matching" demands of a promotion gate.

The candidate is promoted only if it clears every axis:
``candidate <= ratio_max * live + abs_slack`` per metric, where the
additive slack keeps near-zero live scores from demanding the
impossible.  Insufficient holdout is an automatic **fail** — "not enough
evidence" must never promote.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.objectives import makespan
from repro.matching.problem import MatchingProblem
from repro.matching.relaxed import SolverConfig, solve_relaxed
from repro.matching.rounding import round_assignment
from repro.predictors.models import PredictorPair
from repro.retrain.buffer import Label

__all__ = ["CanaryWindow", "CanaryDecision", "CanaryGate"]


@dataclass(frozen=True)
class CanaryWindow:
    """One cached dispatch window, replayable under alternative models."""

    window: int
    pair_rows: tuple[int, ...]  # pair-list indices of the window's up clusters
    T: np.ndarray  # true times, shape (m, k)
    A: np.ndarray  # true reliabilities, shape (m, k)
    gamma: float
    Z: np.ndarray  # raw task features, shape (k, d)


@dataclass(frozen=True)
class CanaryDecision:
    """The gate's verdict with every per-axis score it was based on."""

    passed: bool
    reasons: tuple[str, ...]  # failed axes (empty when passed)
    n_holdout: int
    n_windows: int
    time_mse_candidate: float
    time_mse_live: float
    brier_candidate: float
    brier_live: float
    regret_candidate: float
    regret_live: float

    def metrics(self) -> "dict[str, float]":
        """Flat scalar dict for checkpoint metadata and telemetry."""
        return {
            "canary_passed": float(self.passed),
            "canary_holdout": float(self.n_holdout),
            "canary_windows": float(self.n_windows),
            "time_mse_candidate": self.time_mse_candidate,
            "time_mse_live": self.time_mse_live,
            "brier_candidate": self.brier_candidate,
            "brier_live": self.brier_live,
            "regret_candidate": self.regret_candidate,
            "regret_live": self.regret_live,
        }


def _accuracy_scores(
    pairs: "list[PredictorPair]",
    pair_index: "dict[int, int]",
    holdout: "list[Label]",
) -> "tuple[float, float]":
    """(log-time MSE over successes, Brier over all) for one model."""
    sq_time: "list[float]" = []
    sq_rel: "list[float]" = []
    by_cluster: "dict[int, list[Label]]" = {}
    for label in holdout:
        by_cluster.setdefault(label.cluster_id, []).append(label)
    for cid in sorted(by_cluster):
        group = by_cluster[cid]
        pair = pairs[pair_index[cid]]
        Z = np.stack([l.features for l in group])
        t_hat, a_hat = pair.predict(Z)
        a = np.array([float(l.success) for l in group])
        sq_rel.extend(((a_hat - a) ** 2).tolist())
        ok = [i for i, l in enumerate(group) if l.success]
        if ok:
            t = np.array([group[i].realized_hours for i in ok])
            err = np.log(t_hat[ok]) - np.log(t)
            sq_time.extend((err ** 2).tolist())
    time_mse = float(np.mean(sq_time)) if sq_time else float("nan")
    brier = float(np.mean(sq_rel)) if sq_rel else float("nan")
    return time_mse, brier


def _decision_cost(
    pairs: "list[PredictorPair]",
    windows: "list[CanaryWindow]",
    solver: SolverConfig,
) -> float:
    """Mean per-task true makespan of the model's replayed decisions."""
    costs: "list[float]" = []
    for w in windows:
        rows = [pairs[i].predict(w.Z) for i in w.pair_rows]
        T_hat = np.stack([r[0] for r in rows])
        A_hat = np.stack([r[1] for r in rows])
        truth = MatchingProblem(T=w.T, A=w.A, gamma=w.gamma)
        decision = truth.with_predictions(T_hat, A_hat)
        sol = solve_relaxed(decision, solver)
        X = round_assignment(sol.X, decision)
        costs.append(makespan(X, truth) / truth.N)
    return float(np.mean(costs)) if costs else float("nan")


class CanaryGate:
    """Three-axis promotion gate comparing a candidate to the live model."""

    def __init__(
        self,
        *,
        min_holdout: int = 12,
        time_ratio_max: float = 1.0,
        brier_ratio_max: float = 1.05,
        regret_ratio_max: float = 1.02,
        abs_slack: float = 1e-3,
        solver_config: "SolverConfig | None" = None,
    ) -> None:
        if min_holdout < 1:
            raise ValueError("min_holdout must be >= 1")
        for name, v in (("time_ratio_max", time_ratio_max),
                        ("brier_ratio_max", brier_ratio_max),
                        ("regret_ratio_max", regret_ratio_max)):
            if v <= 0:
                raise ValueError(f"{name} must be positive")
        self.min_holdout = min_holdout
        self.time_ratio_max = time_ratio_max
        self.brier_ratio_max = brier_ratio_max
        self.regret_ratio_max = regret_ratio_max
        self.abs_slack = abs_slack
        self.solver_config = solver_config or SolverConfig(tol=1e-4, max_iters=300)

    def evaluate(
        self,
        candidate: "list[PredictorPair]",
        live: "list[PredictorPair]",
        pair_index: "dict[int, int]",
        holdout: "list[Label]",
        windows: "list[CanaryWindow]",
    ) -> CanaryDecision:
        """Score candidate vs live; only labels/windows given are used.

        ``pair_index`` maps cluster id → position in the pair lists (the
        dispatcher's cluster order).  Holdout labels must already be
        causally observable — the controller filters on ``end <= now``
        before calling.
        """
        reasons: "list[str]" = []
        if len(holdout) < self.min_holdout:
            reasons.append(f"insufficient_holdout({len(holdout)}<{self.min_holdout})")
            nan = float("nan")
            return CanaryDecision(
                passed=False, reasons=tuple(reasons),
                n_holdout=len(holdout), n_windows=len(windows),
                time_mse_candidate=nan, time_mse_live=nan,
                brier_candidate=nan, brier_live=nan,
                regret_candidate=nan, regret_live=nan,
            )
        t_cand, b_cand = _accuracy_scores(candidate, pair_index, holdout)
        t_live, b_live = _accuracy_scores(live, pair_index, holdout)
        r_cand = _decision_cost(candidate, windows, self.solver_config)
        r_live = _decision_cost(live, windows, self.solver_config)

        def worse(cand: float, ref: float, ratio: float) -> bool:
            # NaN never clears a gate except when both sides lack data
            # (e.g. no cached windows: the axis is vacuously equal).
            if np.isnan(cand) and np.isnan(ref):
                return False
            if np.isnan(cand) or np.isnan(ref):
                return True
            return cand > ratio * ref + self.abs_slack

        if worse(t_cand, t_live, self.time_ratio_max):
            reasons.append("time_mse")
        if worse(b_cand, b_live, self.brier_ratio_max):
            reasons.append("brier")
        if worse(r_cand, r_live, self.regret_ratio_max):
            reasons.append("decision_regret")
        return CanaryDecision(
            passed=not reasons, reasons=tuple(reasons),
            n_holdout=len(holdout), n_windows=len(windows),
            time_mse_candidate=t_cand, time_mse_live=t_live,
            brier_candidate=b_cand, brier_live=b_live,
            regret_candidate=r_cand, regret_live=r_live,
        )
