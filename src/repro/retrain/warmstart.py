"""Online trainer for the learned warm-start head (serve callback).

The :class:`~repro.serve.warmstart.WarmStartHead` needs ``(task features,
relaxed column)`` pairs; the serving loop produces them for free — every
dispatched window's :class:`~repro.serve.dispatcher.WindowSnapshot` now
carries ``X_relaxed``, the interior solution of the decision solve.  This
module closes that loop: :class:`WarmStartTrainer` rides along as a
:class:`~repro.serve.dispatcher.ServeCallback`, harvests labels, refits
the head every ``refit_every`` windows once ``min_labels`` have
accumulated, and installs the result as ``dispatcher.warm_model`` — from
which point cache-miss windows open from the head's prediction instead of
cold (guarded by the solver's cold-start hedge either way).

Causality rules mirror the predictor label harvester
(:mod:`repro.retrain.buffer`):

- only *full-fleet* windows are harvested — the head predicts columns
  over the whole fleet, and a degraded window's renormalized columns are
  optima of a different (sliced) problem;
- a hot-swap voids the buffer (``dispatcher.swap_epoch``): the old
  labels were relaxed optima of the *old* model's predicted problems;
- labels deduplicate per task id, newest wins, bounded by
  ``max_labels`` (oldest evicted) — deterministic, no RNG anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serve.dispatcher import ServeCallback, WindowSnapshot
from repro.serve.warmstart import WarmStartHead
from repro.telemetry import get_recorder

__all__ = ["WarmStartTrainer", "WarmStartTrainerConfig", "fit_warm_start_head"]


@dataclass(frozen=True)
class WarmStartTrainerConfig:
    """Knobs of the online warm-start head trainer."""

    min_labels: int = 32  # first fit waits for this many distinct tasks
    refit_every: int = 8  # windows between refits once warmed up
    max_labels: int = 2048  # label buffer cap (oldest evicted)
    epochs: int = 120
    lr: float = 0.5
    l2: float = 1e-3
    min_confidence: float = 1.25  # forwarded to WarmStartHead

    def __post_init__(self) -> None:
        if self.min_labels <= 0 or self.refit_every <= 0 or self.max_labels <= 0:
            raise ValueError("min_labels, refit_every and max_labels must be positive")
        if self.max_labels < self.min_labels:
            raise ValueError("max_labels must be >= min_labels")
        if self.epochs <= 0 or self.lr <= 0:
            raise ValueError("epochs and lr must be positive")


def fit_warm_start_head(
    snapshots: "list[WindowSnapshot]",
    cluster_ids: "list[int]",
    *,
    config: "WarmStartTrainerConfig | None" = None,
) -> WarmStartHead:
    """Offline fit: one head from a harvested snapshot list.

    Convenience for replaying a recorded run into a head (e.g. to bundle
    with a registry checkpoint).  Uses the same harvesting rules as the
    online trainer; raises when no snapshot yields labels.
    """
    cfg = config or WarmStartTrainerConfig()
    fleet = tuple(int(c) for c in cluster_ids)
    labels: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
    for snap in snapshots:
        _harvest(snap, fleet, labels, cfg.max_labels)
    if not labels:
        raise ValueError("no full-fleet snapshots with relaxed solutions to fit on")
    Z = np.stack([z for z, _ in labels.values()])
    C = np.stack([c for _, c in labels.values()])
    head = WarmStartHead(Z.shape[1], fleet, l2=cfg.l2,
                         min_confidence=cfg.min_confidence)
    return head.fit(Z, C, epochs=cfg.epochs, lr=cfg.lr)


def _harvest(
    snap: WindowSnapshot,
    fleet: "tuple[int, ...]",
    labels: "dict[int, tuple[np.ndarray, np.ndarray]]",
    cap: int,
) -> int:
    """Fold one snapshot into the label dict; returns labels added."""
    if snap.X_relaxed is None or snap.features is None:
        return 0
    if tuple(snap.cluster_ids) != fleet:
        return 0  # degraded fleet: sliced problem, wrong label space
    added = 0
    for j, task_id in enumerate(snap.task_ids):
        key = int(task_id)
        # Newest label wins and moves to the back of the eviction order.
        labels.pop(key, None)
        labels[key] = (snap.features[j], snap.X_relaxed[:, j])
        added += 1
        while len(labels) > cap:
            labels.pop(next(iter(labels)))
    return added


class WarmStartTrainer(ServeCallback):
    """Serve callback that keeps the dispatcher's warm-start head fresh."""

    def __init__(self, config: "WarmStartTrainerConfig | None" = None) -> None:
        self.config = config or WarmStartTrainerConfig()
        self.dispatcher = None
        self.head: "WarmStartHead | None" = None
        self._labels: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
        self._epoch = 0  # dispatcher.swap_epoch the buffer belongs to
        self._since_fit = 0
        self.fits = 0
        self.harvested = 0
        self.invalidated = 0

    def bind(self, dispatcher) -> "WarmStartTrainer":
        """Attach to the dispatcher whose windows this trainer observes."""
        self.dispatcher = dispatcher
        self._epoch = dispatcher.swap_epoch
        return self

    # ------------------------------------------------------------------ #

    def on_window(self, snapshot: WindowSnapshot) -> None:
        if self.dispatcher is None:
            raise RuntimeError("WarmStartTrainer.bind(dispatcher) was never called")
        rec = get_recorder()
        if self.dispatcher.swap_epoch != self._epoch:
            # Hot-swap since the last window: every buffered label is a
            # relaxed optimum of the *old* model's problems.  Start over
            # (apply_swap already replaced/cleared the live head).
            self._labels.clear()
            self._epoch = self.dispatcher.swap_epoch
            self._since_fit = 0
            self.invalidated += 1
            if rec.enabled:
                rec.counter_add("warmstart/buffer_invalidated")
        fleet = tuple(c.cluster_id for c in self.dispatcher.clusters)
        n = _harvest(snapshot, fleet, self._labels, self.config.max_labels)
        self.harvested += n
        if rec.enabled and n:
            rec.counter_add("warmstart/labels_harvested", n)
        self._since_fit += 1
        if (len(self._labels) >= self.config.min_labels
                and self._since_fit >= self.config.refit_every):
            self._refit(fleet)
            self._since_fit = 0

    def _refit(self, fleet: "tuple[int, ...]") -> None:
        cfg = self.config
        Z = np.stack([z for z, _ in self._labels.values()])
        C = np.stack([c for _, c in self._labels.values()])
        if self.head is None or self.head.cluster_ids != fleet:
            self.head = WarmStartHead(Z.shape[1], fleet, l2=cfg.l2,
                                      min_confidence=cfg.min_confidence)
        self.head.fit(Z, C, epochs=cfg.epochs, lr=cfg.lr)
        self.dispatcher.warm_model = self.head
        self.fits += 1
        rec = get_recorder()
        if rec.enabled:
            rec.counter_add("warmstart/refits")

    def __repr__(self) -> str:
        return (
            f"WarmStartTrainer(labels={len(self._labels)}, fits={self.fits}, "
            f"invalidated={self.invalidated})"
        )
