"""Task pool: the population of deep-learning jobs the platform allocates.

§3.1 of the paper: "the pipeline first samples N deep learning tasks z from
the task pool Z to simulate the workload the platform must allocate within
a given time period."  A :class:`TaskPool` owns a fixed population of
embedded tasks and supplies the train/test splits and per-round samples the
training loop consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.utils.rng import as_generator
from repro.workloads.embedding import GraphEmbedder
from repro.workloads.specs import FAMILY_LIST, Family, ModelSpec, sample_specs

__all__ = ["Task", "TaskPool"]


@dataclass(frozen=True)
class Task:
    """One embedded deep-learning job."""

    task_id: int
    spec: ModelSpec
    features: np.ndarray  # the feature vector z the predictors consume

    def __post_init__(self) -> None:
        if self.features.ndim != 1:
            raise ValueError("task features must be a 1-D vector")


class TaskPool:
    """A fixed population of tasks with deterministic sampling.

    Parameters
    ----------
    size:
        Number of tasks in the pool.
    embedder:
        Feature encoder; defaults to a fresh :class:`GraphEmbedder` with its
        default seed so pools built with the same arguments are identical.
    rng:
        Generator (or seed) for configuration sampling.
    balanced_families:
        When true (default) the pool cycles through model families so small
        pools still contain CV and NLP style tasks, matching the paper's
        mixed workload.
    """

    def __init__(
        self,
        size: int,
        *,
        embedder: GraphEmbedder | None = None,
        rng: np.random.Generator | int | None = None,
        balanced_families: bool = True,
    ) -> None:
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        rng = as_generator(rng)
        self.embedder = embedder or GraphEmbedder()
        families: Sequence[Family] | None = FAMILY_LIST if balanced_families else None
        specs = sample_specs(size, rng, families=families)
        feats = self.embedder.embed_specs(specs)
        self._tasks: list[Task] = [
            Task(task_id=i, spec=s, features=feats[i]) for i, s in enumerate(specs)
        ]

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, idx: int) -> Task:
        return self._tasks[idx]

    @property
    def tasks(self) -> list[Task]:
        return list(self._tasks)

    @property
    def feature_dim(self) -> int:
        return self.embedder.feature_dim

    def features(self) -> np.ndarray:
        """Feature matrix of the whole pool, shape (size, feature_dim)."""
        return np.stack([t.features for t in self._tasks])

    # ------------------------------------------------------------------ #

    def split(
        self, train_fraction: float, rng: np.random.Generator | int | None = None
    ) -> tuple[list[Task], list[Task]]:
        """Shuffle-split the pool into (train, test) task lists."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        rng = as_generator(rng)
        order = rng.permutation(len(self._tasks))
        cut = max(1, min(len(self._tasks) - 1, int(round(train_fraction * len(self._tasks)))))
        train = [self._tasks[i] for i in order[:cut]]
        test = [self._tasks[i] for i in order[cut:]]
        return train, test

    def sample_round(
        self, n: int, rng: np.random.Generator | int | None = None, *, replace: bool = False
    ) -> list[Task]:
        """Sample the N tasks of one allocation round."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not replace and n > len(self._tasks):
            raise ValueError(f"cannot sample {n} tasks from a pool of {len(self._tasks)}")
        rng = as_generator(rng)
        idx = rng.choice(len(self._tasks), size=n, replace=replace)
        return [self._tasks[int(i)] for i in idx]
