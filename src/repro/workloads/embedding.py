"""Task-to-feature embedding (the paper's GNN front end, §4.1.1).

The paper embeds tasks with a graph neural network, then trains only
fully-connected predictor heads on the resulting features; the embedding is
treated as a fixed, given transformation ("we omit the distinction between
tasks and features").  We therefore implement a *deterministic, untrained*
message-passing encoder — exactly the role the frozen GNN plays:

1. per-node features: one-hot operator type ⊕ log-scaled flops/params/mem;
2. ``rounds`` of mean-aggregation message passing with fixed random
   projection weights (seeded, so the embedding is a pure function);
3. graph readout: mean ⊕ max pooling over node states;
4. a fixed random projection to ``out_dim`` plus standardized scalar
   workload attributes appended, giving the final feature vector ``z``.

The appended attributes keep the map information-rich enough for MLP heads
to learn performance, while the random-projection part carries topology.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.utils.rng import as_generator
from repro.workloads.graphs import OP_TYPES, build_graph, node_feature_matrix
from repro.workloads.specs import ModelSpec

__all__ = ["GraphEmbedder", "DEFAULT_FEATURE_DIM"]

#: Dimension of the structural (message-passing) part of the embedding.
_STRUCT_DIM = 10
#: Number of scalar workload attributes appended to the structural part.
_NUM_ATTRS = 6
#: Default total feature dimension exposed to predictors.
DEFAULT_FEATURE_DIM = _STRUCT_DIM + _NUM_ATTRS


@dataclass
class _MPWeights:
    """Fixed (untrained) projection weights of the message-passing encoder."""

    w_self: np.ndarray
    w_neigh: np.ndarray
    w_readout: np.ndarray


class GraphEmbedder:
    """Deterministic message-passing graph encoder producing feature vectors.

    Parameters
    ----------
    hidden_dim:
        Node state width during message passing.
    rounds:
        Number of propagation rounds (receptive field radius).
    struct_dim:
        Output width of the structural readout.
    seed:
        Seed for the fixed projection weights.  Two embedders with the same
        seed and hyperparameters compute identical features.
    """

    def __init__(
        self,
        hidden_dim: int = 32,
        rounds: int = 3,
        struct_dim: int = _STRUCT_DIM,
        seed: int = 7,
    ) -> None:
        if hidden_dim <= 0 or rounds <= 0 or struct_dim <= 0:
            raise ValueError("hidden_dim, rounds and struct_dim must be positive")
        self.hidden_dim = hidden_dim
        self.rounds = rounds
        self.struct_dim = struct_dim
        self.seed = seed
        rng = as_generator(seed)
        in_dim = len(OP_TYPES) + 3
        scale_in = 1.0 / np.sqrt(in_dim)
        scale_h = 1.0 / np.sqrt(hidden_dim)
        self._weights = _MPWeights(
            w_self=rng.normal(0.0, scale_in, size=(in_dim, hidden_dim)),
            w_neigh=rng.normal(0.0, scale_h, size=(hidden_dim, hidden_dim)),
            w_readout=rng.normal(0.0, scale_h, size=(2 * hidden_dim, struct_dim)),
        )

    # ------------------------------------------------------------------ #

    @property
    def feature_dim(self) -> int:
        return self.struct_dim + _NUM_ATTRS

    def embed_graph(self, g: nx.DiGraph) -> np.ndarray:
        """Structural embedding of an operator graph (no attributes)."""
        x = node_feature_matrix(g)
        # Symmetric normalized adjacency (undirected view) for propagation.
        adj = nx.to_numpy_array(g)
        adj = adj + adj.T
        deg = adj.sum(axis=1)
        inv_sqrt = 1.0 / np.sqrt(np.maximum(deg, 1.0))
        norm_adj = adj * inv_sqrt[:, None] * inv_sqrt[None, :]

        h = np.tanh(x @ self._weights.w_self)
        for _ in range(self.rounds):
            h = np.tanh(0.5 * h + 0.5 * (norm_adj @ h) @ self._weights.w_neigh)
        pooled = np.concatenate([h.mean(axis=0), h.max(axis=0)])
        return np.tanh(pooled @ self._weights.w_readout)

    def embed_spec(self, spec: ModelSpec) -> np.ndarray:
        """Full feature vector ``z``: structural readout ⊕ workload attributes.

        The scalar attributes are log-scaled and normalized to roughly
        [-1, 1] using fixed constants so features are comparable across the
        configuration ranges of :mod:`repro.workloads.specs`.
        """
        g = build_graph(spec)
        struct = self.embed_graph(g)
        attrs = np.array(
            [
                _norm_log(spec.flops_per_sample, 6.0, 13.0),
                _norm_log(spec.params, 4.0, 10.0),
                _norm_log(spec.memory_gb + 1e-9, -4.0, 2.5),
                _norm_log(spec.batch_size, 1.0, 3.0),
                _norm_log(spec.seq_length, 0.0, 2.6),
                _norm_log(spec.epoch_flops, 12.0, 19.0),
            ]
        )
        return np.concatenate([struct, attrs])

    def embed_specs(self, specs: "list[ModelSpec] | tuple[ModelSpec, ...]") -> np.ndarray:
        """Stack embeddings for a task list: shape (N, feature_dim)."""
        if not specs:
            raise ValueError("specs must be non-empty")
        return np.stack([self.embed_spec(s) for s in specs])


def _norm_log(value: float, lo_log10: float, hi_log10: float) -> float:
    """Map log10(value) from [lo, hi] to roughly [-1, 1] (not clipped)."""
    logv = np.log10(max(value, 1e-12))
    return float(2.0 * (logv - lo_log10) / (hi_log10 - lo_log10) - 1.0)
