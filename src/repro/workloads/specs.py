"""Deep-learning task specifications.

The paper's dataset is measured epoch runtimes of CV models (CIFAR-10,
ImageNet) and NLP models (Europarl) with varied hyperparameters on the
Xirang platform.  We substitute a parametric generator of model
configurations across four families — convolutional, transformer, recurrent
and MLP — each with hyperparameter ranges matching the common architectures
the paper names (ResNet/VGG-class CV nets, translation-class seq models).

A :class:`ModelSpec` carries the *interpretable* workload attributes
(FLOPs, parameter count, activation memory, family mix).  Ground-truth
cluster performance models consume these attributes; predictors only see
the embedded feature vector — mirroring the real platform where predictors
never observe the true response surface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["Family", "ModelSpec", "sample_spec", "sample_specs", "FAMILY_LIST"]


class Family(str, Enum):
    """Model family; determines hyperparameter ranges and graph topology."""

    CONV = "conv"
    TRANSFORMER = "transformer"
    RNN = "rnn"
    MLP = "mlp"


FAMILY_LIST: tuple[Family, ...] = (Family.CONV, Family.TRANSFORMER, Family.RNN, Family.MLP)


@dataclass(frozen=True)
class ModelSpec:
    """One deep-learning training task configuration.

    Attributes are per *training epoch* on the task's dataset, matching the
    paper's measurement protocol ("we monitored and recorded the runtimes
    of each epoch during actual execution").
    """

    family: Family
    depth: int  # number of blocks/layers
    width: int  # channels / hidden dim
    batch_size: int
    dataset_samples: int  # samples per epoch
    seq_length: int = 1  # tokens (NLP) or spatial resolution proxy (CV)
    dataset: str = "synthetic"
    train_epochs: int = 200  # full-run length; a "task" is one training run

    # Derived workload attributes, filled in __post_init__.
    flops_per_sample: float = field(default=0.0, compare=False)
    params: float = field(default=0.0, compare=False)
    activation_mem_gb: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.depth <= 0 or self.width <= 0 or self.batch_size <= 0:
            raise ValueError("depth, width and batch_size must be positive")
        if self.dataset_samples <= 0 or self.seq_length <= 0:
            raise ValueError("dataset_samples and seq_length must be positive")
        if self.train_epochs <= 0:
            raise ValueError("train_epochs must be positive")
        flops, params, act = _workload_attributes(self)
        object.__setattr__(self, "flops_per_sample", flops)
        object.__setattr__(self, "params", params)
        object.__setattr__(self, "activation_mem_gb", act)

    # ------------------------------------------------------------------ #

    @property
    def epoch_flops(self) -> float:
        """Total training FLOPs per epoch (forward + backward ≈ 3× forward)."""
        return 3.0 * self.flops_per_sample * self.dataset_samples

    @property
    def total_flops(self) -> float:
        """FLOPs of the whole training run (all epochs)."""
        return self.epoch_flops * self.train_epochs

    @property
    def steps_per_epoch(self) -> int:
        return max(1, math.ceil(self.dataset_samples / self.batch_size))

    @property
    def memory_gb(self) -> float:
        """Peak device memory: parameters + optimizer state + activations."""
        param_gb = self.params * 4 * 3 / 1e9  # fp32 weights + Adam moments
        return param_gb + self.activation_mem_gb * self.batch_size

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per parameter byte at the task's batch size.

        Weights are fetched once per step and reused across the batch, so
        intensity scales with batch size — the standard roofline argument
        for why small-batch training is memory-bound.
        """
        return self.flops_per_sample * self.batch_size / max(self.params * 4.0, 1.0)

    def describe(self) -> str:
        return (
            f"{self.family.value}(depth={self.depth}, width={self.width}, "
            f"batch={self.batch_size}, seq={self.seq_length}, "
            f"flops/sample={self.flops_per_sample:.3g}, params={self.params:.3g})"
        )


def _workload_attributes(spec: ModelSpec) -> tuple[float, float, float]:
    """Estimate (flops_per_sample, params, activation_mem_gb/sample).

    Uses standard per-family cost models (the same first-order formulas
    Paleo-style predictors use):

    - conv:        flops ≈ depth · width² · k² · H·W,  params ≈ depth · width² · k²
    - transformer: flops ≈ depth · (seq² · width + seq · width²) · c
    - rnn:         flops ≈ depth · seq · width² · gates
    - mlp:         flops ≈ depth · width²
    """
    d, w, s = spec.depth, spec.width, spec.seq_length
    if spec.family is Family.CONV:
        k2 = 9.0  # 3×3 kernels
        spatial = float(s * s)  # seq_length doubles as spatial resolution
        flops = 2.0 * d * (w**2) * k2 * spatial
        params = d * (w**2) * k2
        act = (d * w * spatial * 4.0) / 1e9
    elif spec.family is Family.TRANSFORMER:
        flops = 2.0 * d * (4.0 * s * w**2 + 2.0 * (s**2) * w)
        params = d * 12.0 * (w**2)
        act = (d * s * w * 12.0) / 1e9
    elif spec.family is Family.RNN:
        gates = 4.0  # LSTM
        flops = 2.0 * d * s * gates * (w**2)
        params = d * gates * 2.0 * (w**2)
        act = (d * s * w * 8.0) / 1e9
    elif spec.family is Family.MLP:
        flops = 2.0 * d * (w**2)
        params = d * (w**2)
        act = (d * w * 4.0) / 1e9
    else:  # pragma: no cover - exhaustive over enum
        raise ValueError(f"unknown family {spec.family}")
    return float(flops), float(params), float(act)


# --------------------------------------------------------------------- #
# Random configuration sampling (the "task pool Z" of the paper, §3.1)
# --------------------------------------------------------------------- #

_DATASETS: dict[Family, list[tuple[str, int, int]]] = {
    # (name, samples/epoch, seq_length-or-resolution).  Ranges are chosen so
    # total training FLOPs across all families span roughly [3e14, 4e17] —
    # wide enough that matching matters, narrow enough that no single task
    # dwarfs every other (see DESIGN.md §5 on calibration).
    Family.CONV: [("cifar10", 50_000, 32), ("imagenet-100", 30_000, 48)],
    Family.TRANSFORMER: [("europarl", 60_000, 128), ("europarl-long", 30_000, 256)],
    Family.RNN: [("europarl", 200_000, 64), ("europarl-long", 100_000, 128)],
    Family.MLP: [("tabular", 2_000_000, 1)],
}

_RANGES: dict[Family, dict[str, tuple[int, int]]] = {
    Family.CONV: {"depth": (8, 32), "width": (48, 160), "batch": (32, 256)},
    Family.TRANSFORMER: {"depth": (2, 12), "width": (192, 512), "batch": (16, 128)},
    Family.RNN: {"depth": (2, 6), "width": (192, 640), "batch": (16, 128)},
    Family.MLP: {"depth": (4, 12), "width": (512, 2048), "batch": (64, 512)},
}


def sample_spec(
    rng: np.random.Generator | int | None = None,
    *,
    family: Family | None = None,
) -> ModelSpec:
    """Sample one model configuration (log-uniform widths/batches)."""
    rng = as_generator(rng)
    if family is None:
        family = FAMILY_LIST[int(rng.integers(0, len(FAMILY_LIST)))]
    ranges = _RANGES[family]
    dataset, samples, seq = _DATASETS[family][int(rng.integers(0, len(_DATASETS[family])))]

    def log_uniform(lo: int, hi: int) -> int:
        return int(round(math.exp(rng.uniform(math.log(lo), math.log(hi)))))

    return ModelSpec(
        family=family,
        depth=int(rng.integers(ranges["depth"][0], ranges["depth"][1] + 1)),
        width=log_uniform(*ranges["width"]),
        batch_size=log_uniform(*ranges["batch"]),
        dataset_samples=samples,
        seq_length=seq,
        dataset=dataset,
        train_epochs=int(rng.integers(100, 401)),
    )


def sample_specs(
    n: int,
    rng: np.random.Generator | int | None = None,
    *,
    families: Sequence[Family] | None = None,
) -> list[ModelSpec]:
    """Sample ``n`` configurations, cycling through ``families`` if given
    (guarantees family diversity in small pools)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = as_generator(rng)
    if families:
        return [sample_spec(rng, family=families[i % len(families)]) for i in range(n)]
    return [sample_spec(rng) for _ in range(n)]
