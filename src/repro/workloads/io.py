"""Trace import/export: plug real platform measurements into the pipeline.

The library ships a synthetic substitute for the paper's Xirang traces, but
a downstream user with real measurements should not have to re-implement
the training stack.  This module defines a small, documented JSON trace
format and the loaders that feed it into :class:`ClusterDataset` objects:

```json
{
  "format": "repro-trace-v1",
  "feature_dim": 16,
  "tasks": [{"task_id": 0, "features": [..]}, ...],
  "clusters": [
    {"cluster_id": 0, "name": "site-a",
     "measurements": [{"task_id": 0, "time_hours": 1.2, "reliability": 0.97}, ...]},
    ...
  ]
}
```

Features may come from any embedding — the predictors only need a fixed-
dimension vector per task.  ``export_trace`` produces the same format from
synthetic pools so round-tripping is testable and users have a reference
file to imitate.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.utils.rng import as_generator
from repro.workloads.taskpool import Task

if TYPE_CHECKING:  # imported lazily at call time to avoid package cycles
    from repro.clusters.cluster import Cluster
    from repro.predictors.dataset import ClusterDataset

__all__ = ["Trace", "export_trace", "load_trace", "trace_to_datasets"]

FORMAT_TAG = "repro-trace-v1"


@dataclass(frozen=True)
class Trace:
    """An in-memory measurement trace (see module docstring for the format)."""

    features: np.ndarray  # (n_tasks, d), indexed by task_id order
    task_ids: list[int]
    cluster_names: dict[int, str]
    measurements: dict[int, list[tuple[int, float, float]]]  # cid -> [(tid, t, a)]

    def __post_init__(self) -> None:
        if self.features.ndim != 2:
            raise ValueError("features must be 2-D")
        if len(self.task_ids) != len(self.features):
            raise ValueError("task_ids and features must have equal length")
        valid = set(self.task_ids)
        for cid, ms in self.measurements.items():
            for tid, t, a in ms:
                if tid not in valid:
                    raise ValueError(f"cluster {cid} references unknown task {tid}")
                if t <= 0:
                    raise ValueError(f"non-positive time for task {tid} on cluster {cid}")
                if not 0.0 <= a <= 1.0:
                    raise ValueError(f"reliability out of range for task {tid}")

    @property
    def n_tasks(self) -> int:
        return len(self.task_ids)

    @property
    def n_clusters(self) -> int:
        return len(self.measurements)


def export_trace(
    clusters: "list[Cluster]",  # noqa: F821 - lazy import
    tasks: "list[Task]",
    path: "str | os.PathLike[str]",
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Measure ``tasks`` on ``clusters`` and write the JSON trace file."""
    if not clusters or not tasks:
        raise ValueError("clusters and tasks must be non-empty")
    rng = as_generator(rng)
    features = np.stack([t.features for t in tasks])
    task_ids = [t.task_id for t in tasks]
    measurements: dict[int, list[tuple[int, float, float]]] = {}
    names: dict[int, str] = {}
    for cluster in clusters:
        ms = cluster.measure_batch(tasks, rng)
        measurements[cluster.cluster_id] = [
            (m.task_id, m.time_hours, m.reliability) for m in ms
        ]
        names[cluster.cluster_id] = cluster.name
    trace = Trace(features=features, task_ids=task_ids, cluster_names=names,
                  measurements=measurements)
    _write(trace, path)
    return trace


def _write(trace: Trace, path: "str | os.PathLike[str]") -> None:
    doc = {
        "format": FORMAT_TAG,
        "feature_dim": int(trace.features.shape[1]),
        "tasks": [
            {"task_id": int(tid), "features": [float(v) for v in feat]}
            for tid, feat in zip(trace.task_ids, trace.features)
        ],
        "clusters": [
            {
                "cluster_id": int(cid),
                "name": trace.cluster_names.get(cid, f"cluster-{cid}"),
                "measurements": [
                    {"task_id": int(tid), "time_hours": float(t), "reliability": float(a)}
                    for tid, t, a in ms
                ],
            }
            for cid, ms in sorted(trace.measurements.items())
        ],
    }
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)


def load_trace(path: "str | os.PathLike[str]") -> Trace:
    """Parse and validate a ``repro-trace-v1`` JSON file."""
    with open(os.fspath(path), encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != FORMAT_TAG:
        raise ValueError(f"not a {FORMAT_TAG} file: format={doc.get('format')!r}")
    tasks = doc["tasks"]
    d = int(doc["feature_dim"])
    features = np.array([t["features"] for t in tasks], dtype=np.float64)
    if features.shape != (len(tasks), d):
        raise ValueError("feature matrix inconsistent with feature_dim")
    task_ids = [int(t["task_id"]) for t in tasks]
    if len(set(task_ids)) != len(task_ids):
        raise ValueError("duplicate task ids in trace")
    names: dict[int, str] = {}
    measurements: dict[int, list[tuple[int, float, float]]] = {}
    for c in doc["clusters"]:
        cid = int(c["cluster_id"])
        names[cid] = str(c.get("name", f"cluster-{cid}"))
        measurements[cid] = [
            (int(m["task_id"]), float(m["time_hours"]), float(m["reliability"]))
            for m in c["measurements"]
        ]
    return Trace(features=features, task_ids=task_ids, cluster_names=names,
                 measurements=measurements)


def trace_to_datasets(trace: Trace) -> "list[ClusterDataset]":
    """Convert a trace into per-cluster training datasets.

    Only tasks measured on a cluster appear in its dataset (real traces are
    often incomplete); rows follow the trace's measurement order.
    """
    from repro.predictors.dataset import ClusterDataset

    index = {tid: row for row, tid in enumerate(trace.task_ids)}
    datasets = []
    for cid, ms in sorted(trace.measurements.items()):
        if not ms:
            raise ValueError(f"cluster {cid} has no measurements")
        rows = [index[tid] for tid, _, _ in ms]
        datasets.append(
            ClusterDataset(
                cluster_id=cid,
                Z=trace.features[rows],
                t=np.array([t for _, t, _ in ms]),
                a=np.array([a for _, _, a in ms]),
            )
        )
    return datasets
