"""Operator-graph construction for model specs.

The paper cites graph-based task embeddings (BRP-NAS, Liang et al.) and
"used a Graph Neural Network to transform these deep learning tasks into
features".  This module builds the computational graph a GNN would consume:
a :class:`networkx.DiGraph` whose nodes are operators annotated with FLOPs,
parameter counts and output memory, and whose edges are data dependencies.

Topologies per family:

- **conv**: a chain of stages with residual skip connections every other
  block (ResNet motif) ending in pool + classifier;
- **transformer**: per-layer attention → add&norm → FFN → add&norm blocks
  with residual edges;
- **rnn**: stacked recurrent cells (unrolled logically, one node per layer)
  plus embedding/projection;
- **mlp**: a simple linear chain.
"""

from __future__ import annotations

from typing import Iterator

import networkx as nx
import numpy as np

from repro.workloads.specs import Family, ModelSpec

__all__ = ["OP_TYPES", "build_graph", "graph_summary"]

#: Operator vocabulary — index order defines the one-hot layout used by the
#: feature embedding, so it must stay stable.
OP_TYPES: tuple[str, ...] = (
    "input",
    "conv",
    "bn",
    "relu",
    "pool",
    "add",
    "attention",
    "layernorm",
    "ffn",
    "rnn_cell",
    "embedding",
    "linear",
    "softmax",
    "output",
)

_OP_INDEX = {name: i for i, name in enumerate(OP_TYPES)}


def _node(
    g: nx.DiGraph,
    idx: int,
    op: str,
    *,
    flops: float = 0.0,
    params: float = 0.0,
    mem: float = 0.0,
) -> int:
    if op not in _OP_INDEX:
        raise ValueError(f"unknown op type {op!r}")
    g.add_node(idx, op=op, flops=float(flops), params=float(params), mem=float(mem))
    return idx


def build_graph(spec: ModelSpec) -> nx.DiGraph:
    """Build the operator graph for ``spec``.

    Node FLOPs sum (approximately) to ``spec.flops_per_sample`` and node
    params to ``spec.params`` so graph-level readouts are consistent with
    the scalar workload attributes.
    """
    builders = {
        Family.CONV: _build_conv,
        Family.TRANSFORMER: _build_transformer,
        Family.RNN: _build_rnn,
        Family.MLP: _build_mlp,
    }
    g = builders[spec.family](spec)
    if not nx.is_directed_acyclic_graph(g):  # pragma: no cover - structural invariant
        raise RuntimeError("operator graph must be a DAG")
    return g


def _build_conv(spec: ModelSpec) -> nx.DiGraph:
    g = nx.DiGraph()
    per_block_flops = spec.flops_per_sample / max(spec.depth, 1)
    per_block_params = spec.params / max(spec.depth, 1)
    act_mem = spec.activation_mem_gb / max(spec.depth, 1)

    i = _node(g, 0, "input")
    prev = i
    skip_src = i
    next_id = 1
    for block in range(spec.depth):
        conv = _node(g, next_id, "conv", flops=per_block_flops * 0.94,
                     params=per_block_params, mem=act_mem)
        g.add_edge(prev, conv)
        bn = _node(g, next_id + 1, "bn", flops=per_block_flops * 0.03, mem=act_mem)
        g.add_edge(conv, bn)
        act = _node(g, next_id + 2, "relu", flops=per_block_flops * 0.03, mem=act_mem)
        g.add_edge(bn, act)
        next_id += 3
        prev = act
        if block % 2 == 1:  # residual join every second block
            add = _node(g, next_id, "add", mem=act_mem)
            g.add_edge(prev, add)
            g.add_edge(skip_src, add)
            next_id += 1
            prev = add
            skip_src = add
    pool = _node(g, next_id, "pool", flops=spec.flops_per_sample * 1e-4)
    g.add_edge(prev, pool)
    fc = _node(g, next_id + 1, "linear", flops=2.0 * spec.width * 10,
               params=spec.width * 10)
    g.add_edge(pool, fc)
    out = _node(g, next_id + 2, "output")
    g.add_edge(fc, out)
    return g


def _build_transformer(spec: ModelSpec) -> nx.DiGraph:
    g = nx.DiGraph()
    d = max(spec.depth, 1)
    attn_flops = 2.0 * spec.depth * 2.0 * (spec.seq_length**2) * spec.width / d
    ffn_flops = 2.0 * spec.depth * 4.0 * spec.seq_length * spec.width**2 / d
    layer_params = spec.params / d
    act_mem = spec.activation_mem_gb / d

    i = _node(g, 0, "input")
    emb = _node(g, 1, "embedding", flops=spec.flops_per_sample * 0.005,
                params=spec.params * 0.02)
    g.add_edge(i, emb)
    prev = emb
    next_id = 2
    for _ in range(spec.depth):
        attn = _node(g, next_id, "attention", flops=attn_flops,
                     params=layer_params / 3.0, mem=act_mem / 2)
        g.add_edge(prev, attn)
        add1 = _node(g, next_id + 1, "add", mem=act_mem / 4)
        g.add_edge(attn, add1)
        g.add_edge(prev, add1)  # residual
        ln1 = _node(g, next_id + 2, "layernorm", flops=attn_flops * 0.01)
        g.add_edge(add1, ln1)
        ffn = _node(g, next_id + 3, "ffn", flops=ffn_flops,
                    params=layer_params * 2.0 / 3.0, mem=act_mem / 2)
        g.add_edge(ln1, ffn)
        add2 = _node(g, next_id + 4, "add", mem=act_mem / 4)
        g.add_edge(ffn, add2)
        g.add_edge(ln1, add2)  # residual
        ln2 = _node(g, next_id + 5, "layernorm", flops=ffn_flops * 0.01)
        g.add_edge(add2, ln2)
        next_id += 6
        prev = ln2
    proj = _node(g, next_id, "linear", flops=spec.flops_per_sample * 0.01,
                 params=spec.params * 0.02)
    g.add_edge(prev, proj)
    sm = _node(g, next_id + 1, "softmax", flops=spec.flops_per_sample * 1e-4)
    g.add_edge(proj, sm)
    out = _node(g, next_id + 2, "output")
    g.add_edge(sm, out)
    return g


def _build_rnn(spec: ModelSpec) -> nx.DiGraph:
    g = nx.DiGraph()
    d = max(spec.depth, 1)
    per_layer_flops = spec.flops_per_sample / d
    per_layer_params = spec.params / d
    act_mem = spec.activation_mem_gb / d

    i = _node(g, 0, "input")
    emb = _node(g, 1, "embedding", flops=spec.flops_per_sample * 0.005,
                params=spec.params * 0.02)
    g.add_edge(i, emb)
    prev = emb
    next_id = 2
    for _ in range(spec.depth):
        cell = _node(g, next_id, "rnn_cell", flops=per_layer_flops,
                     params=per_layer_params, mem=act_mem)
        g.add_edge(prev, cell)
        next_id += 1
        prev = cell
    proj = _node(g, next_id, "linear", flops=spec.flops_per_sample * 0.01,
                 params=spec.params * 0.02)
    g.add_edge(prev, proj)
    out = _node(g, next_id + 1, "output")
    g.add_edge(proj, out)
    return g


def _build_mlp(spec: ModelSpec) -> nx.DiGraph:
    g = nx.DiGraph()
    d = max(spec.depth, 1)
    per_layer_flops = spec.flops_per_sample / d
    per_layer_params = spec.params / d

    i = _node(g, 0, "input")
    prev = i
    next_id = 1
    for layer in range(spec.depth):
        lin = _node(g, next_id, "linear", flops=per_layer_flops,
                    params=per_layer_params, mem=spec.activation_mem_gb / d)
        g.add_edge(prev, lin)
        next_id += 1
        prev = lin
        if layer < spec.depth - 1:
            act = _node(g, next_id, "relu", flops=per_layer_flops * 0.01)
            g.add_edge(prev, act)
            next_id += 1
            prev = act
    out = _node(g, next_id, "output")
    g.add_edge(prev, out)
    return g


def graph_summary(g: nx.DiGraph) -> dict[str, float]:
    """Aggregate graph statistics used in tests and sanity reports."""
    flops = sum(data["flops"] for _, data in g.nodes(data=True))
    params = sum(data["params"] for _, data in g.nodes(data=True))
    mem = sum(data["mem"] for _, data in g.nodes(data=True))
    depth = float(nx.dag_longest_path_length(g))
    return {
        "nodes": float(g.number_of_nodes()),
        "edges": float(g.number_of_edges()),
        "flops": float(flops),
        "params": float(params),
        "mem": float(mem),
        "critical_path": depth,
    }


def iter_op_counts(g: nx.DiGraph) -> Iterator[tuple[str, int]]:
    """Yield (op_type, count) pairs in stable OP_TYPES order."""
    counts = dict.fromkeys(OP_TYPES, 0)
    for _, data in g.nodes(data=True):
        counts[data["op"]] += 1
    yield from counts.items()


def node_feature_matrix(g: nx.DiGraph) -> np.ndarray:
    """Per-node features: one-hot op type ⊕ log1p(flops, params, mem).

    Rows follow the graph's node insertion order (stable for our builders).
    Shape: (num_nodes, len(OP_TYPES) + 3).
    """
    n = g.number_of_nodes()
    feats = np.zeros((n, len(OP_TYPES) + 3))
    for row, (_, data) in enumerate(g.nodes(data=True)):
        feats[row, _OP_INDEX[data["op"]]] = 1.0
        feats[row, len(OP_TYPES) + 0] = np.log1p(data["flops"])
        feats[row, len(OP_TYPES) + 1] = np.log1p(data["params"])
        feats[row, len(OP_TYPES) + 2] = np.log1p(data["mem"] * 1e9)
    return feats
