"""Workload substrate: DL task specs, operator graphs, embeddings, pools.

Substitutes the paper's proprietary Xirang workload traces with a
parametric generator of CV/NLP-style training jobs; see DESIGN.md §2.
"""

from repro.workloads.embedding import DEFAULT_FEATURE_DIM, GraphEmbedder
from repro.workloads.graphs import OP_TYPES, build_graph, graph_summary
from repro.workloads.io import Trace, export_trace, load_trace, trace_to_datasets
from repro.workloads.specs import FAMILY_LIST, Family, ModelSpec, sample_spec, sample_specs
from repro.workloads.taskpool import Task, TaskPool

__all__ = [
    "Family",
    "FAMILY_LIST",
    "ModelSpec",
    "sample_spec",
    "sample_specs",
    "OP_TYPES",
    "build_graph",
    "graph_summary",
    "GraphEmbedder",
    "DEFAULT_FEATURE_DIM",
    "Task",
    "TaskPool",
    "Trace",
    "export_trace",
    "load_trace",
    "trace_to_datasets",
]
